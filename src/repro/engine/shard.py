"""Shard-parallel scatter/gather execution with a supervised worker pool.

Large column-store scans and aggregations are split into contiguous row-range
*shards* executed by a pool of worker processes.  The parent publishes each
column's flat ``int64`` code array once per zone epoch into a
:mod:`multiprocessing.shared_memory` segment; dictionaries ship to each worker
once per ``(column, epoch)`` and are cached worker-side, so steady-state
dispatch moves only the query and the shard bounds.  Workers filter their
range in the code domain (:func:`compile_code_mask`, with the store's
decode-and-compare fallback) and either return global match positions
(selection) or mergeable partial aggregate states
(:func:`partition_partial_rows`); the parent gathers and merges with
:func:`merge_partition_partials` — the exact kernels the partitioned
aggregation tier already pins against the serial reference.

The pool is *supervised*: the gather loop polls worker liveness, a dead or
wedged worker is terminated and replaced individually (the rest of the crew
and their shipped dictionaries survive), every replacement is counted, and
every shared-memory segment the pool ever publishes is tracked in a ledger
audited — unlinked exactly once — at ``Session.close()``/``atexit``.  A
failed scatter/gather walks an explicit **degradation ladder**::

    shard-parallel -> retry (bounded exponential backoff + jitter) -> serial

recorded per query on the :class:`~repro.engine.timing.CostAccountant`
(rendered by ``EXPLAIN ANALYZE`` as a ``degraded:`` section) and counted in
``SessionStats``.  Query deadlines (:mod:`repro.engine.deadline`) cut through
every rung: the gather loop polls the deadline, abandons and repairs wedged
workers, and raises :class:`~repro.errors.QueryTimeoutError` with nothing
billed.

Cost discipline mirrors the rest of the engine: workers **never** touch a
:class:`~repro.engine.timing.CostAccountant`.  The parent dispatches, gathers
and merges first, charge-free; only when the sharded result is fully in hand
does it replay the serial path's charges in the serial call order, so the
:class:`~repro.engine.timing.CostBreakdown` is bit-identical to
:func:`shard_execution_disabled` execution.  Any failure — a dead worker, a
pickling error, a gather timeout, an unorderable partial merge — abandons the
sharded attempt *before* any charge lands; after the retry budget the caller
falls through to the ordinary serial operator, which charges itself.

The planner records a :class:`ShardDecision` per physical plan; like
``ScanDecision`` and ``AggregateStrategy`` it carries the zone-epoch token and
the toggle state at derivation and is re-derived when either goes stale.
The process-fault matrix (:data:`repro.testing.faults.PROCESS_FAULTS`) is
injected at the exact parent-side points where each fault would bite; the
resilience suite (``pytest -m resilience``) pins that every fault still
yields bit-identical rows and charges and a self-healed pool.
"""

from __future__ import annotations

import atexit
import itertools
import logging
import multiprocessing
import os
import pickle
import queue as queue_module
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace as dataclass_replace
from multiprocessing import shared_memory
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_SEED, ResilienceConfig
from repro.engine.batch import EncodedColumn, evaluate_predicate_mask
from repro.engine.column_store import ColumnStoreTable, compile_code_mask
from repro.engine.deadline import deadline_check, deadline_remaining
from repro.engine.integrity import codes_checksum, verify_on_attach_enabled
from repro.engine.executor.agg_pushdown import (
    TIER_ZERO_SCAN,
    _partial_merge_safe,
    aggregate_pushdown_enabled,
)
from repro.engine.executor.aggregates import (
    merge_partition_partials,
    partition_partial_rows,
)
from repro.engine.timing import CostAccountant
from repro.errors import QueryTimeoutError
from repro.query.ast import AggregationQuery, Query, SelectQuery
from repro.testing.faults import process_fault

__all__ = [
    "ResilienceCounters",
    "ShardDecision",
    "ShardExecutionError",
    "apply_resilience_config",
    "audit_shared_segments",
    "derive_shard_decision",
    "gather_timeout_for",
    "get_worker_pool",
    "projected_parallel_ms",
    "resilience_counters",
    "shard_bounds",
    "shard_config",
    "shard_execution_disabled",
    "shard_execution_enabled",
    "shard_fan_out",
    "shard_min_rows",
    "shutdown_worker_pool",
    "try_sharded_aggregation",
    "try_sharded_select",
    "AGGREGATION_PARALLEL_COMPONENTS",
    "SELECT_PARALLEL_COMPONENTS",
]

_LOGGER = logging.getLogger("repro.engine.shard")


# -- toggle and configuration ----------------------------------------------------------

_SHARD_ENABLED = True

#: Planner default fan-out: how many shards a sharded query scatters into.
_SHARD_FAN_OUT = 4

#: Tables below this row count never shard — dispatch overhead dominates.
_SHARD_MIN_ROWS = 200_000

#: Base seconds the parent waits for a gather; scaled with the sharded row
#: count by :func:`gather_timeout_for` so 1M-row benches can't flake under
#: CI load.
_GATHER_TIMEOUT_S = 30.0

#: Total sharded attempts (1 = no retry) before degrading to serial.
_SHARD_MAX_ATTEMPTS = 2

#: Base / cap of the bounded exponential retry backoff (seconds).
_RETRY_BACKOFF_S = 0.05
_RETRY_BACKOFF_CAP_S = 1.0

#: Gather poll interval: the granularity of liveness/deadline detection.
_POLL_INTERVAL_S = 0.05

#: Deterministic jitter source for retry backoff (reproducible runs).
_BACKOFF_RNG = random.Random(DEFAULT_SEED)


def shard_execution_enabled() -> bool:
    """Whether the sharded scatter/gather paths may run."""
    return _SHARD_ENABLED


@contextmanager
def shard_execution_disabled():
    """Force serial execution — the charge-identity reference for sharding."""
    global _SHARD_ENABLED
    previous = _SHARD_ENABLED
    _SHARD_ENABLED = False
    try:
        yield
    finally:
        _SHARD_ENABLED = previous


def shard_fan_out() -> int:
    return _SHARD_FAN_OUT


def shard_min_rows() -> int:
    return _SHARD_MIN_ROWS


def gather_timeout_for(num_rows: int) -> float:
    """The gather timeout for a *num_rows*-row sharded execution.

    The configured base (``shard_config(gather_timeout_s=...)``) covers
    tables up to 1M rows; larger scatters get proportionally more headroom,
    so a loaded CI machine running the 1M-row benches cannot trip a
    hard-coded constant.
    """
    return _GATHER_TIMEOUT_S * max(1.0, num_rows / 1_000_000.0)


@contextmanager
def shard_config(fan_out: Optional[int] = None, min_rows: Optional[int] = None,
                 max_attempts: Optional[int] = None,
                 gather_timeout_s: Optional[float] = None,
                 backoff_s: Optional[float] = None):
    """Temporarily override the shard executor's configuration.

    Tests use ``shard_config(min_rows=1)`` to shard small tables; recorded
    :class:`ShardDecision` objects embed the ``(fan_out, min_rows)`` they
    were derived under and go stale when it changes, exactly like a toggle
    flip.  ``max_attempts``/``gather_timeout_s``/``backoff_s`` are runtime
    resilience knobs — they change how a scatter/gather fails, never what it
    computes, so they do not invalidate recorded decisions.
    """
    global _SHARD_FAN_OUT, _SHARD_MIN_ROWS, _SHARD_MAX_ATTEMPTS
    global _GATHER_TIMEOUT_S, _RETRY_BACKOFF_S
    previous = (_SHARD_FAN_OUT, _SHARD_MIN_ROWS, _SHARD_MAX_ATTEMPTS,
                _GATHER_TIMEOUT_S, _RETRY_BACKOFF_S)
    if fan_out is not None:
        _SHARD_FAN_OUT = fan_out
    if min_rows is not None:
        _SHARD_MIN_ROWS = min_rows
    if max_attempts is not None:
        _SHARD_MAX_ATTEMPTS = max(1, max_attempts)
    if gather_timeout_s is not None:
        _GATHER_TIMEOUT_S = gather_timeout_s
    if backoff_s is not None:
        _RETRY_BACKOFF_S = backoff_s
    try:
        yield
    finally:
        (_SHARD_FAN_OUT, _SHARD_MIN_ROWS, _SHARD_MAX_ATTEMPTS,
         _GATHER_TIMEOUT_S, _RETRY_BACKOFF_S) = previous


def apply_resilience_config(config: ResilienceConfig) -> None:
    """Install *config* as the process-wide resilience defaults.

    Called by ``Session.__init__`` when a :class:`ResilienceConfig` is
    passed to ``connect``; ``shard_config(...)`` still scopes temporary
    overrides on top.
    """
    global _SHARD_MAX_ATTEMPTS, _GATHER_TIMEOUT_S, _RETRY_BACKOFF_S
    global _RETRY_BACKOFF_CAP_S, _POLL_INTERVAL_S
    _SHARD_MAX_ATTEMPTS = max(1, config.max_attempts)
    _GATHER_TIMEOUT_S = config.gather_timeout_s
    _RETRY_BACKOFF_S = config.backoff_s
    _RETRY_BACKOFF_CAP_S = config.backoff_cap_s
    _POLL_INTERVAL_S = config.heartbeat_poll_s


class ShardExecutionError(RuntimeError):
    """A sharded attempt failed; the caller retries or falls back to serial.

    ``attempts`` records how many scatter/gather attempts were consumed when
    the error finally escaped the retry loop (1 = the first attempt failed
    and no retry budget remained).
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


# -- resilience telemetry --------------------------------------------------------------


@dataclass
class ResilienceCounters:
    """Process-wide counters of the resilient execution layer.

    Sessions snapshot these at construction and report per-session deltas in
    ``SessionStats``; the resilience suite asserts on the deltas directly.
    """

    #: Sharded attempts that were retried after a failure.
    shard_retries: int = 0
    #: Worker processes individually replaced by the supervisor.
    worker_replacements: int = 0
    #: Queries that exhausted the sharded retry budget and ran serially.
    shard_degradations: int = 0
    #: Shared-memory segments the close/atexit audit had to reclaim.
    segments_reclaimed: int = 0
    #: Unexpected (non-shutdown-race) errors swallowed during pool teardown.
    teardown_errors: int = 0

    def snapshot(self) -> "ResilienceCounters":
        return dataclass_replace(self)


_COUNTERS = ResilienceCounters()


def resilience_counters() -> ResilienceCounters:
    """The live process-wide counters (mutable; snapshot to compare)."""
    return _COUNTERS


# -- the planner-recorded decision -----------------------------------------------------


@dataclass(frozen=True)
class ShardDecision:
    """The planner's per-query sharding verdict, recorded on the access path.

    ``token`` is the zone-epoch token at derivation; ``enabled``/``pushdown``
    snapshot the toggles and ``config`` the ``(fan_out, min_rows)`` globals.
    :meth:`matches` is the staleness test — any mismatch forces the executor
    (or EXPLAIN) to re-derive, mirroring ``AggregateStrategy.matches``.
    ``max_attempts`` snapshots the retry budget the decision was planned
    under; :meth:`ladder` renders the degradation ladder a sharded execution
    walks on failure.
    """

    table: str
    fan_out: int
    bounds: Tuple[Tuple[int, int], ...]
    sharded: bool
    reason: str
    token: Tuple[Any, ...]
    enabled: bool
    pushdown: bool
    config: Tuple[int, int]
    query: Optional[Query] = None
    max_attempts: int = 1

    def matches(self, query: Query, token: Tuple[Any, ...]) -> bool:
        if self.enabled != shard_execution_enabled():
            return False
        if self.pushdown != aggregate_pushdown_enabled():
            return False
        if self.config != (_SHARD_FAN_OUT, _SHARD_MIN_ROWS):
            return False
        if self.token != token:
            return False
        if self.query is query:
            return True
        try:
            return bool(self.query == query)
        except Exception:
            return False

    def describe(self) -> str:
        if self.sharded:
            return f"fan-out {self.fan_out} ({self.reason})"
        return f"serial ({self.reason})"

    def ladder(self) -> Tuple[str, ...]:
        """The degradation ladder this execution walks on failure."""
        if not self.sharded:
            return ("serial",)
        rungs = ["shard-parallel"]
        if self.max_attempts > 1:
            rungs.append(f"retry x{self.max_attempts - 1}")
        rungs.append("serial")
        rungs.append("error")
        return tuple(rungs)

    def describe_ladder(self) -> str:
        return " -> ".join(self.ladder())


def shard_bounds(num_rows: int, fan_out: int) -> Tuple[Tuple[int, int], ...]:
    """Balanced contiguous ``[start, stop)`` row ranges covering the table."""
    base, extra = divmod(num_rows, fan_out)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(fan_out):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return tuple(bounds)


def derive_shard_decision(path, query: Query) -> ShardDecision:
    """Derive the sharding verdict for *query* over *path*.

    Only single-table queries against a delta-free column store at or above
    the row floor shard.  Aggregations additionally require provably
    order-independent partial merges (the partition-partial NaN proof) and
    must not already be answered zone-free; selections require a predicate
    (an unfiltered SELECT is pure materialisation, which stays serial).
    """
    table = getattr(path, "table", None)
    token = path._zone_token()

    def verdict(sharded: bool, reason: str, fan_out: int = 0,
                bounds: Tuple[Tuple[int, int], ...] = ()) -> ShardDecision:
        return ShardDecision(
            table=getattr(table, "name", "?"), fan_out=fan_out, bounds=bounds,
            sharded=sharded, reason=reason, token=token,
            enabled=shard_execution_enabled(),
            pushdown=aggregate_pushdown_enabled(),
            config=(_SHARD_FAN_OUT, _SHARD_MIN_ROWS), query=query,
            max_attempts=_SHARD_MAX_ATTEMPTS,
        )

    if not shard_execution_enabled():
        return verdict(False, "shard execution disabled")
    if getattr(path, "_inner", False):
        return verdict(False, "inner partition path")
    backend = getattr(table, "backend", None)
    if not isinstance(backend, ColumnStoreTable):
        return verdict(False, "not a plain column store")
    if table.delta_rows:
        return verdict(False, "delta rows pending merge")
    num_rows = table.num_rows
    if num_rows < _SHARD_MIN_ROWS:
        return verdict(False, f"below {_SHARD_MIN_ROWS}-row floor")
    predicate = query.predicate
    if isinstance(query, AggregationQuery):
        if query.joins:
            return verdict(False, "join query")
        safe, why = _partial_merge_safe(path, query)
        if not safe:
            return verdict(False, why)
        strategy = path.aggregate_decision_for(query)
        if (aggregate_pushdown_enabled()
                and strategy.tier == TIER_ZERO_SCAN
                and strategy.answer is not None):
            return verdict(False, "zero-scan answer")
    elif isinstance(query, SelectQuery):
        if predicate is None:
            return verdict(False, "unfiltered select")
    else:
        return verdict(False, "unsupported query type")
    if predicate is not None:
        if any(not table.schema.has_column(name) for name in predicate.columns()):
            return verdict(False, "unresolvable predicate column")
        if not path.decision_for(predicate).partitions[0].scan:
            return verdict(False, "zone-pruned scan")
    fan_out = min(_SHARD_FAN_OUT, num_rows)
    if fan_out < 2:
        return verdict(False, "fan-out below 2")
    return verdict(
        True, f"{fan_out} x ~{num_rows // fan_out} rows",
        fan_out=fan_out, bounds=shard_bounds(num_rows, fan_out),
    )


# -- shared-memory segment ledger ------------------------------------------------------

#: Every segment name the pool ever created, mapped to how many times it was
#: successfully unlinked.  The close/atexit audit asserts "exactly once".
_SEGMENT_LEDGER: Dict[str, int] = {}


def _ledger_create(name: str) -> None:
    _SEGMENT_LEDGER[name] = 0


def _unlink_segment(shm) -> None:
    """Close and unlink *shm*, recording the unlink in the ledger.

    A segment already gone (``FileNotFoundError``) — e.g. an injected unlink
    race, or a prior reclaim — is not counted: the ledger counts *successful*
    unlinks, so the exactly-once audit still holds.
    """
    try:
        shm.close()
    except OSError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        return
    except OSError as error:
        _COUNTERS.teardown_errors += 1
        _LOGGER.warning("unexpected error unlinking segment %s: %r",
                        shm.name, error)
        return
    if shm.name in _SEGMENT_LEDGER:
        _SEGMENT_LEDGER[shm.name] += 1


def audit_shared_segments(reclaim: bool = True) -> Tuple[List[str], List[str]]:
    """Audit the segment ledger: every published segment unlinked exactly once.

    Returns ``(leaked, double_unlinked)`` segment names.  Segments still
    owned by a live pool are not audited.  With *reclaim* (the default),
    leaked segments are force-unlinked — a worker death mid-publish must not
    leave ``/dev/shm`` litter behind — and counted in
    :attr:`ResilienceCounters.segments_reclaimed`.  Audited entries leave
    the ledger, so repeated audits (close + atexit) stay clean.
    """
    live = set()
    if _POOL is not None:
        live = {entry[1].name for entry in _POOL._segments.values()}
    leaked: List[str] = []
    doubled: List[str] = []
    for name in list(_SEGMENT_LEDGER):
        if name in live:
            continue
        count = _SEGMENT_LEDGER.pop(name)
        if count == 0:
            leaked.append(name)
            if reclaim:
                try:
                    stray = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue  # never landed on disk: created, then died early
                _COUNTERS.segments_reclaimed += 1
                try:
                    stray.close()
                    stray.unlink()
                except OSError:
                    pass
        elif count > 1:
            doubled.append(name)
    if leaked or doubled:
        _LOGGER.warning("segment audit: leaked=%s double-unlinked=%s",
                        leaked, doubled)
    return leaked, doubled


# -- worker pool over shared-memory code arrays ----------------------------------------

_NAMESPACE_COUNTER = itertools.count(1)


def _backend_namespace(backend: ColumnStoreTable) -> int:
    """A process-unique id for *backend* — table names alone can collide."""
    namespace = getattr(backend, "_shard_namespace", None)
    if namespace is None:
        namespace = next(_NAMESPACE_COUNTER)
        backend._shard_namespace = namespace
    return namespace


@contextmanager
def _attach_untracked():
    """Attach shared segments without registering with the resource tracker.

    The parent is the segments' sole owner, but ``SharedMemory`` registers
    every attach (Python 3.11 has no ``track=`` parameter).  A worker that let
    that registration through would either erase the parent's claim from a
    shared tracker (fork) or stand up its own tracker that unlinks the
    parent's live segments when the worker exits (spawn) — so workers
    suppress registration for the duration of the attach.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


class _ShardColumn:
    """Worker-side stand-in for ``CompressedColumn``: name, codes, dictionary."""

    __slots__ = ("name", "codes", "dictionary")

    def __init__(self, name: str, codes: np.ndarray, dictionary) -> None:
        self.name = name
        self.codes = codes
        self.dictionary = dictionary


class _Unpicklable:
    """A poisoned result payload: pickles on the way in, never on the way out."""

    def __reduce__(self):
        raise pickle.PicklingError("poisoned shard result")


def _worker_main(tasks, results) -> None:
    """Worker loop: attach shards, scan/aggregate them, never charge costs."""
    cache: Dict[Tuple[int, str], Tuple[int, Any, np.ndarray, Any]] = {}
    while True:
        blob = tasks.get()
        if not blob:
            break
        task = pickle.loads(blob)
        if task.get("kind") == "stop":
            break
        try:
            payload = _run_shard_task(task, cache)
        except BaseException as error:  # noqa: BLE001 — report, don't die
            payload = {"error": repr(error)}
        payload["task_id"] = task.get("task_id")
        payload["run_id"] = task.get("run_id")
        try:
            results.put(pickle.dumps(payload))
        except Exception as error:
            results.put(pickle.dumps({
                "task_id": task.get("task_id"), "run_id": task.get("run_id"),
                "error": repr(error),
            }))
    for _epoch, shm, _codes, _dictionary in cache.values():
        try:
            shm.close()
        except Exception:
            pass


def _attach_columns(task, cache) -> Dict[str, Tuple[np.ndarray, Any]]:
    """Resolve the task's columns to ``(codes, dictionary)`` pairs.

    New ``(column, epoch)`` arrivals in ``task["ship"]`` attach their shared
    segment (untracked) and displace any stale epoch in the cache.
    """
    namespace, epoch = task["namespace"], task["epoch"]
    for name, shm_name, length, dictionary in task["ship"]:
        key = (namespace, name)
        stale = cache.get(key)
        if stale is not None:
            try:
                stale[1].close()
            except Exception:
                pass
        with _attach_untracked():
            shm = shared_memory.SharedMemory(name=shm_name)
        codes = np.ndarray((length,), dtype=np.int64, buffer=shm.buf)
        cache[key] = (epoch, shm, codes, dictionary)
    columns: Dict[str, Tuple[np.ndarray, Any]] = {}
    for name in task["columns"]:
        entry = cache.get((namespace, name))
        if entry is None or entry[0] != epoch:
            raise ShardExecutionError(f"stale shard column {name!r}")
        columns[name] = (entry[2], entry[3])
    return columns


def _run_shard_task(task, cache) -> Dict[str, Any]:
    fault = task.get("fault")
    if fault == "kill":
        # Injected process death: exit without cleanup, exactly like a
        # SIGKILL'd worker.  The supervisor must detect and replace us.
        os._exit(17)
    elif fault == "hang":
        # Injected wedge: never answer.  The gather timeout (or the query
        # deadline) must abandon us; the supervisor terminates and replaces.
        time.sleep(task.get("hang_s", 3600.0))
    columns = _attach_columns(task, cache)
    checksums = task.get("checksums")
    if checksums:
        # Verify the *whole* attached segment against the checksum the
        # parent stamped from canonical memory at publish time.  Per task,
        # not per attach: a warm pool skips re-shipping at an unchanged
        # epoch, so attach-time-only verification would silently serve a
        # segment corrupted after the first query.
        for name, expected in checksums.items():
            codes, _dictionary = columns[name]
            if codes_checksum(codes) != expected:
                raise ShardExecutionError(
                    f"shared-memory checksum mismatch for column {name!r}"
                )
    start, stop = task["start"], task["stop"]
    num = stop - start
    query = task["query"]
    predicate = query.predicate
    positions: Optional[np.ndarray] = None
    if predicate is not None:
        shims = {
            name: _ShardColumn(name, codes[start:stop], dictionary)
            for name, (codes, dictionary) in columns.items()
        }
        compiled = compile_code_mask(predicate, shims, num)
        if compiled is not None:
            mask = compiled[0]
        else:
            arrays = {
                name: shim.dictionary.decode_array(shim.codes)
                for name, shim in shims.items()
                if name in predicate.columns()
            }
            mask = evaluate_predicate_mask(predicate, arrays, num)
        positions = np.nonzero(mask)[0]
    if task["kind"] == "select":
        matched = int(len(positions))
        result: Dict[str, Any] = {
            "scanned": num, "matched": matched,
            "positions": (positions + start).astype(np.int64),
        }
        if fault == "poison":
            result["poison"] = _Unpicklable()
        return result
    matched = num if positions is None else int(len(positions))
    available: Dict[str, Any] = {}
    for name in task["base_columns"]:
        codes, dictionary = columns[name]
        sliced = codes[start:stop]
        if positions is not None:
            sliced = sliced[positions]
        available[name] = EncodedColumn(np.ascontiguousarray(sliced), dictionary)
    from repro.engine.executor.operators import _assemble_inputs

    inputs, keys = _assemble_inputs(query, available)
    partials = partition_partial_rows(
        query.aggregates, list(query.group_by), inputs, keys, matched
    )
    result = {"scanned": num, "matched": matched, "partials": partials}
    if fault == "poison":
        result["poison"] = _Unpicklable()
    return result


#: Teardown exceptions that are expected shutdown races — a queue already
#: closed by a dying feeder thread, a pipe torn down by the peer — and are
#: deliberately ignored.  Anything else is logged and counted.
_EXPECTED_TEARDOWN_ERRORS = (
    ValueError,            # "Queue is closed" and friends
    BrokenPipeError,
    ConnectionResetError,
    EOFError,
    FileNotFoundError,     # segment already unlinked
)


def _teardown(action: str, step) -> None:
    """Run one teardown *step*, distinguishing races from real errors.

    Expected shutdown races pass silently; anything else is logged and
    counted in :attr:`ResilienceCounters.teardown_errors` — never raised,
    teardown must always complete, but never silently swallowed either.
    """
    try:
        step()
    except _EXPECTED_TEARDOWN_ERRORS:
        pass
    except Exception as error:
        _COUNTERS.teardown_errors += 1
        _LOGGER.warning("unexpected error during %s: %r", action, error)


class ShardWorkerPool:
    """A supervised crew of worker processes plus the parent's segment registry.

    One task queue per worker (shards go round-robin), one shared result
    queue.  ``_segments`` maps ``(namespace, column)`` to the published
    ``(epoch, shm, length, dictionary, checksum)``; superseded epochs are unlinked
    eagerly, everything else at :meth:`shutdown`.  ``_shipped`` tracks which
    ``(namespace, column, epoch)`` dictionaries each worker already holds.

    Supervision: :meth:`repair` replaces dead workers individually (the
    survivors keep their shipped dictionaries), the gather loop in
    :meth:`run` polls liveness and the query deadline, and every gather is
    tagged with a run id so results of an abandoned attempt can never bleed
    into the next query's gather.
    """

    def __init__(self, num_workers: int, start_method: str) -> None:
        self.num_workers = max(1, num_workers)
        self.start_method = start_method
        self._context = multiprocessing.get_context(start_method)
        self._results = self._context.Queue()
        self._workers: List[Tuple[Any, Any]] = []
        self._shipped: List[set] = []
        self._run_ids = itertools.count(1)
        for _ in range(self.num_workers):
            self._workers.append(self._spawn_worker())
            self._shipped.append(set())
        self._segments: Dict[Tuple[int, str],
                             Tuple[int, Any, int, Any, Optional[int]]] = {}

    def _spawn_worker(self) -> Tuple[Any, Any]:
        tasks = self._context.Queue()
        process = self._context.Process(
            target=_worker_main, args=(tasks, self._results), daemon=True
        )
        process.start()
        return (process, tasks)

    def alive(self) -> bool:
        return bool(self._workers) and all(
            process.is_alive() for process, _tasks in self._workers
        )

    def worker_pids(self) -> List[int]:
        return [process.pid for process, _tasks in self._workers]

    def replace_worker(self, index: int) -> None:
        """Terminate (if needed) and replace one worker, keeping the rest.

        The replacement starts with an empty shipped set — it holds no
        segments and no dictionaries, so the next task that touches it
        re-ships.
        """
        process, task_queue = self._workers[index]
        if process.is_alive():
            process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            process.kill()
            process.join(timeout=2.0)
        _teardown("worker queue close", task_queue.close)
        _teardown("worker queue join-thread", task_queue.cancel_join_thread)
        self._workers[index] = self._spawn_worker()
        self._shipped[index] = set()
        _COUNTERS.worker_replacements += 1

    def repair(self) -> int:
        """Replace every dead worker; returns how many were replaced."""
        replaced = 0
        for index, (process, _tasks) in enumerate(self._workers):
            if not process.is_alive():
                self.replace_worker(index)
                replaced += 1
        return replaced

    def publish(self, namespace: int, epoch: int, backend: ColumnStoreTable,
                names: Sequence[str]) -> Dict[str, Tuple[str, int, Optional[int]]]:
        """Ensure current-epoch segments exist for *names*; return specs.

        Each spec carries the column's expected code checksum (or ``None``
        with attach verification disabled), computed from the *canonical*
        backend memory at publish time — the workers recompute over the
        attached segment per task, so any bit damage between the two
        (a flipped segment byte, a stale attach) surfaces as a typed
        shard error and walks the degradation ladder.
        """
        verify = verify_on_attach_enabled()
        specs: Dict[str, Tuple[str, int, Optional[int]]] = {}
        for name in names:
            key = (namespace, name)
            entry = self._segments.get(key)
            if entry is None or entry[0] != epoch:
                if entry is not None:
                    _unlink_segment(entry[1])
                compressed = backend.compressed_column(name)
                codes = np.ascontiguousarray(compressed.codes, dtype=np.int64)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, codes.nbytes)
                )
                _ledger_create(shm.name)
                np.ndarray(codes.shape, dtype=np.int64, buffer=shm.buf)[:] = codes
                checksum = (
                    backend.integrity.expected(
                        name, compressed.codes, compressed.dictionary, epoch
                    )[0]
                    if verify else None
                )
                entry = (epoch, shm, len(codes), compressed.dictionary, checksum)
                self._segments[key] = entry
            specs[name] = (entry[1].name, entry[2],
                           entry[4] if verify else None)
        return specs

    def invalidate_namespace(self, namespace: int) -> None:
        """Drop (and unlink) every segment of *namespace*; force re-ship.

        Called after a failed scatter/gather attempt: whatever state the
        workers hold for this table is suspect (a racing unlink may have
        removed a segment under them), so the retry republishes from the
        backend and re-ships to every worker.
        """
        for key in [key for key in self._segments if key[0] == namespace]:
            _unlink_segment(self._segments.pop(key)[1])
        for shipped in self._shipped:
            for token in [t for t in shipped if t[0] == namespace]:
                shipped.discard(token)

    def sabotage_unlink(self, namespace: int) -> None:
        """Fault injector: unlink one live segment out from under the workers.

        Models an unlink race (an external reclaim, a buggy second owner):
        the segment name stays in the registry and in flight, but the file
        is gone, so the next attach fails mid-query.  The resilience layer
        must retry with a republished segment.
        """
        for (ns, _name), entry in self._segments.items():
            if ns == namespace:
                _unlink_segment(entry[1])
                return

    def sabotage_flip(self, namespace: int) -> None:
        """Fault injector: flip one bit of a live shared segment.

        Models silent memory corruption of a published segment (a DMA
        scribble, a cosmic-ray flip): the segment stays attached and the
        registry still advertises it, but its contents no longer match the
        checksum stamped at publish time.  Workers must detect the mismatch
        before executing over it, fail the attempt with a typed error, and
        let the resilience ladder republish-and-retry.
        """
        for (ns, _name), entry in self._segments.items():
            if ns == namespace:
                entry[1].buf[0] ^= 0x01
                return

    def ship_list(self, worker: int, namespace: int, epoch: int,
                  specs: Dict[str, Tuple[str, int, Optional[int]]]) -> List[Tuple]:
        """The (column, segment, dictionary) payloads *worker* still lacks."""
        ship: List[Tuple] = []
        for name, (shm_name, length, _checksum) in specs.items():
            token = (namespace, name, epoch)
            if token in self._shipped[worker]:
                continue
            dictionary = self._segments[(namespace, name)][3]
            ship.append((name, shm_name, length, dictionary))
            self._shipped[worker].add(token)
        return ship

    def run(self, tasks: Sequence[Dict[str, Any]],
            timeout_s: Optional[float] = None) -> Dict[int, Dict[str, Any]]:
        """Scatter *tasks* (each pre-assigned a worker) and gather by id.

        The gather loop polls: every :data:`_POLL_INTERVAL_S` it checks the
        query deadline (expiry abandons the outstanding workers, repairs
        them and raises :class:`~repro.errors.QueryTimeoutError`), worker
        liveness (a death fails fast — no waiting out the full timeout) and
        the gather timeout (a wedge terminates and replaces the suspects).
        Results are filtered by run id, so stragglers from an abandoned
        attempt cannot satisfy — or corrupt — a later gather.
        """
        run_id = next(self._run_ids)
        if timeout_s is None:
            timeout_s = _GATHER_TIMEOUT_S
        outstanding: Dict[int, int] = {}
        for task in tasks:
            index = task["worker"]
            process, task_queue = self._workers[index]
            if not process.is_alive():
                self.replace_worker(index)
                raise ShardExecutionError(
                    "shard worker died before dispatch"
                )
            task["run_id"] = run_id
            try:
                blob = pickle.dumps(task)
            except Exception as error:
                raise ShardExecutionError(
                    f"unpicklable shard task: {error!r}"
                ) from error
            task_queue.put(blob)
            outstanding[task["task_id"]] = index
        gathered: Dict[int, Dict[str, Any]] = {}
        end = time.monotonic() + timeout_s
        while outstanding:
            remaining = deadline_remaining()
            if remaining is not None and remaining <= 0.0:
                self._abandon(outstanding)
                deadline_check()  # raises QueryTimeoutError
            poll = _POLL_INTERVAL_S
            poll = min(poll, max(0.001, end - time.monotonic()))
            if remaining is not None:
                poll = min(poll, max(0.001, remaining))
            try:
                result = pickle.loads(self._results.get(timeout=poll))
            except queue_module.Empty:
                dead = sorted({
                    index for index in outstanding.values()
                    if not self._workers[index][0].is_alive()
                })
                if dead:
                    for index in dead:
                        self.replace_worker(index)
                    raise ShardExecutionError(
                        f"shard worker died mid-shard "
                        f"(replaced {len(dead)} worker(s))"
                    )
                if time.monotonic() >= end:
                    self._abandon(outstanding)
                    raise ShardExecutionError(
                        f"shard gather timed out after {timeout_s:.1f}s "
                        f"(wedged worker(s) replaced)"
                    )
                continue
            if result.get("run_id") != run_id:
                continue  # straggler from an abandoned attempt
            error = result.get("error")
            if error is not None:
                raise ShardExecutionError(f"shard worker failed: {error}")
            gathered[result["task_id"]] = result
            outstanding.pop(result["task_id"], None)
        return gathered

    def _abandon(self, outstanding: Dict[int, int]) -> None:
        """Give up on *outstanding* tasks: replace the workers holding them.

        A worker that still owes a result is either wedged or about to
        produce a result for an attempt nobody waits on anymore; either way
        the safe move is terminate-and-replace (run-id filtering discards
        anything it already queued).
        """
        for index in sorted(set(outstanding.values())):
            self.replace_worker(index)
        outstanding.clear()

    def shutdown(self) -> None:
        for _process, task_queue in self._workers:
            _teardown("worker stop signal", lambda q=task_queue: q.put(b""))
        for process, task_queue in self._workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            _teardown("worker queue close", task_queue.close)
            _teardown("worker queue join-thread", task_queue.cancel_join_thread)
        _teardown("result queue close", self._results.close)
        _teardown("result queue join-thread", self._results.cancel_join_thread)
        for entry in self._segments.values():
            shm = entry[1]
            _unlink_segment(shm)
        self._segments.clear()
        self._workers = []
        self._shipped = []


_POOL: Optional[ShardWorkerPool] = None


def _default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def get_worker_pool(start_method: Optional[str] = None) -> ShardWorkerPool:
    """The process-wide pool, (re)created lazily with ``shard_fan_out`` workers.

    Passing a different *start_method* (the spawn determinism smoke test)
    replaces the current pool; passing ``None`` keeps the current pool
    whatever its method.  Dead workers are *repaired individually* — the
    pool itself survives worker deaths; only a start-method change or an
    explicit :func:`shutdown_worker_pool` tears it down.
    """
    global _POOL
    if _POOL is not None:
        if start_method is not None and _POOL.start_method != start_method:
            _POOL.shutdown()
            _POOL = None
        else:
            _POOL.repair()
            return _POOL
    if _POOL is None:
        _POOL = ShardWorkerPool(
            num_workers=_SHARD_FAN_OUT,
            start_method=start_method or _default_start_method(),
        )
    return _POOL


def shutdown_worker_pool() -> None:
    """Stop the workers and unlink every shared segment (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def _shutdown_and_audit() -> None:
    shutdown_worker_pool()
    audit_shared_segments()


atexit.register(_shutdown_and_audit)


# -- parent-side scatter/gather --------------------------------------------------------


def _backoff_delay(attempt: int) -> float:
    """Bounded exponential backoff with deterministic jitter, in seconds.

    *attempt* is 1 for the first retry.  The jitter keeps retries of
    concurrent sessions from synchronising; drawing it from a seeded RNG
    keeps runs reproducible.
    """
    base = min(_RETRY_BACKOFF_CAP_S, _RETRY_BACKOFF_S * (2.0 ** (attempt - 1)))
    return base * (0.5 + 0.5 * _BACKOFF_RNG.random())


def _inject_process_faults(tasks: List[Dict[str, Any]]) -> None:
    """Arm any requested worker-side process faults on the first task.

    Checked once per attempt: a one-shot plan sabotages only the first
    attempt (the retry heals), an ``every_hit`` plan sabotages every attempt
    (the query degrades to serial).
    """
    if not tasks:
        return
    if process_fault("shard.worker.kill"):
        tasks[0]["fault"] = "kill"
    elif process_fault("shard.worker.hang"):
        tasks[0]["fault"] = "hang"
    elif process_fault("shard.result.poison"):
        tasks[0]["fault"] = "poison"


def _scatter_gather(backend: ColumnStoreTable, query: Query,
                    decision: ShardDecision, kind: str,
                    columns: Sequence[str]) -> List[Dict[str, Any]]:
    """Dispatch one task per shard and return results in shard order.

    Walks the retry rung of the degradation ladder: up to
    ``shard_config(max_attempts=...)`` attempts, separated by bounded
    exponential backoff with jitter.  Between attempts the pool is repaired
    (dead/wedged workers replaced — never the whole crew) and the table's
    segments invalidated, so the retry republishes and re-ships.  Raises
    :class:`ShardExecutionError` (with ``.attempts``) when the budget is
    exhausted; a :class:`~repro.errors.QueryTimeoutError` from the query
    deadline propagates immediately — deadlines don't retry.
    """
    pool = get_worker_pool()
    namespace = _backend_namespace(backend)
    epoch = backend.zone_epoch
    num_rows = decision.bounds[-1][1] if decision.bounds else 0
    timeout_s = gather_timeout_for(num_rows)
    attempts = max(1, _SHARD_MAX_ATTEMPTS)
    last_error: Optional[ShardExecutionError] = None
    for attempt in range(1, attempts + 1):
        deadline_check()
        if attempt > 1:
            _COUNTERS.shard_retries += 1
            pool.repair()
            pool.invalidate_namespace(namespace)
            time.sleep(min(_backoff_delay(attempt - 1),
                           deadline_remaining() or float("inf")))
            deadline_check()
        try:
            specs = pool.publish(namespace, epoch, backend, columns)
            if process_fault("shard.shm.unlink_race"):
                pool.sabotage_unlink(namespace)
            if process_fault("shard.shm.bit_flip"):
                pool.sabotage_flip(namespace)
            checksums = {
                name: spec[2] for name, spec in specs.items()
                if spec[2] is not None
            } or None
            tasks = []
            for index, (start, stop) in enumerate(decision.bounds):
                worker = index % pool.num_workers
                tasks.append({
                    "kind": kind, "task_id": index, "worker": worker,
                    "namespace": namespace, "epoch": epoch,
                    "ship": pool.ship_list(worker, namespace, epoch, specs),
                    "columns": list(columns), "start": start, "stop": stop,
                    "query": query, "base_columns": list(columns),
                    "checksums": checksums,
                })
            _inject_process_faults(tasks)
            gathered = pool.run(tasks, timeout_s)
            return [gathered[index] for index in range(len(decision.bounds))]
        except ShardExecutionError as error:
            last_error = error
            continue
    raise ShardExecutionError(
        f"sharded execution failed after {attempts} attempt(s): {last_error}",
        attempts=attempts,
    ) from last_error


def _record_degradation(accountant: CostAccountant, decision: ShardDecision,
                        table_name: str, reason: str, attempts: int) -> None:
    """Count and describe one walk down the ladder to the serial rung."""
    _COUNTERS.shard_degradations += 1
    rungs = ["shard-parallel"]
    if attempts > 1:
        rungs.append(f"retry x{attempts - 1}")
    rungs.append("serial")
    accountant.record_degradation(
        table_name, f"{' -> '.join(rungs)} ({reason})"
    )


def try_sharded_aggregation(path, query: AggregationQuery,
                            base_columns: Sequence[str],
                            accountant: CostAccountant) -> Optional[List[Dict[str, Any]]]:
    """Sharded grouped/ungrouped aggregation, or ``None`` to run serially.

    Scatter, gather and merge complete before the first charge lands; the
    serial collect-then-reduce charges are then replayed in call order, so a
    fallback can never leave a partial bill behind.  ``None`` means the
    query was ineligible *or* exhausted the retry budget — the degradation
    (if any) is recorded on the accountant; a deadline expiry raises instead.
    """
    decision = path.shard_decision_for(query)
    if not decision.sharded:
        return None
    table = path.table
    try:
        results = _scatter_gather(
            table.backend, query, decision, "agg", list(base_columns)
        )
        rows = merge_partition_partials(
            query.aggregates, list(query.group_by),
            [result["partials"] for result in results],
        )
    except ShardExecutionError as error:
        _record_degradation(accountant, decision, table.name, str(error),
                            getattr(error, "attempts", 1))
        return None
    except TypeError:
        _record_degradation(accountant, decision, table.name,
                            "unorderable partial merge", 1)
        return None
    matched = sum(result["matched"] for result in results)
    accountant.count_partition(table.name, scanned=True)
    backend = table.backend
    if query.predicate is not None:
        table.charge_filter_scan(query.predicate, accountant)
        for name in base_columns:
            backend.charge_encoded_read(name, matched, accountant)
    else:
        for name in base_columns:
            backend.charge_encoded_read(name, None, accountant)
    accountant.charge_aggregate_updates(matched * len(query.aggregates))
    if query.group_by:
        accountant.charge_group_by_updates(matched)
    accountant.record_shard_execution(
        table.name, decision.fan_out,
        tuple((result["scanned"], result["matched"]) for result in results),
    )
    return rows


def try_sharded_select(path, query: SelectQuery,
                       accountant: CostAccountant) -> Optional[List[Dict[str, Any]]]:
    """Sharded filtered selection, or ``None`` to run serially.

    Workers return global match positions; the parent concatenates them in
    shard order (== ascending row order), applies the limit and performs the
    row fetch itself — ``fetch_rows`` charges materialisation exactly as the
    serial path does, after the replayed scan charges.
    """
    decision = path.shard_decision_for(query)
    if not decision.sharded:
        return None
    table = path.table
    scan_columns = sorted(query.predicate.columns())
    try:
        results = _scatter_gather(
            table.backend, query, decision, "select", scan_columns
        )
    except ShardExecutionError as error:
        _record_degradation(accountant, decision, table.name, str(error),
                            getattr(error, "attempts", 1))
        return None
    positions = np.concatenate(
        [result["positions"] for result in results]
    ).astype(np.int64)
    accountant.count_partition(table.name, scanned=True)
    table.charge_filter_scan(query.predicate, accountant)
    if query.limit is not None:
        positions = positions[: query.limit]
    rows = table.fetch_rows(positions, list(query.columns) or None, accountant)
    accountant.record_shard_execution(
        table.name, decision.fan_out,
        tuple((result["scanned"], result["matched"]) for result in results),
    )
    return rows


# -- parallel-runtime projection -------------------------------------------------------

#: Components an aggregation shard performs inside the workers — they shrink
#: to the largest shard's share under parallel execution.
AGGREGATION_PARALLEL_COMPONENTS: FrozenSet[str] = frozenset({
    "column_scan", "vector_compare", "predicate_eval", "dictionary_decode",
    "tuple_reconstruction", "aggregate_update", "group_by",
})

#: A sharded selection parallelises only the scan; the row fetch happens in
#: the parent after the gather.
SELECT_PARALLEL_COMPONENTS: FrozenSet[str] = frozenset({
    "column_scan", "vector_compare", "predicate_eval",
})


def projected_parallel_ms(cost, shard_rows: Sequence[Tuple[int, int]],
                          fan_out: int, device,
                          parallel_components: FrozenSet[str]) -> float:
    """Deterministic simulated runtime of a sharded execution, in ms.

    The serially-charged :class:`CostBreakdown` (bit-identical to the serial
    reference by construction) is re-projected onto the worker crew: the
    components in *parallel_components* ride the critical shard — the largest
    ``scanned`` share of ``shard_rows`` — while everything else stays serial,
    plus the device's per-shard dispatch overhead.
    """
    components = cost.components
    work_ns = sum(
        nanoseconds for name, nanoseconds in components.items()
        if name in parallel_components
    )
    serial_ns = cost.total_ns - work_ns
    scanned = [rows for rows, _matched in shard_rows]
    critical = max(scanned) / max(1, sum(scanned)) if scanned else 1.0
    return (serial_ns + work_ns * critical + device.shard_dispatch(fan_out)) / 1e6
