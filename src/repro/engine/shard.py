"""Shard-parallel scatter/gather execution over shared-memory code arrays.

Large column-store scans and aggregations are split into contiguous row-range
*shards* executed by a pool of worker processes.  The parent publishes each
column's flat ``int64`` code array once per zone epoch into a
:mod:`multiprocessing.shared_memory` segment; dictionaries ship to each worker
once per ``(column, epoch)`` and are cached worker-side, so steady-state
dispatch moves only the query and the shard bounds.  Workers filter their
range in the code domain (:func:`compile_code_mask`, with the store's
decode-and-compare fallback) and either return global match positions
(selection) or mergeable partial aggregate states
(:func:`partition_partial_rows`); the parent gathers and merges with
:func:`merge_partition_partials` — the exact kernels the partitioned
aggregation tier already pins against the serial reference.

Cost discipline mirrors the rest of the engine: workers **never** touch a
:class:`~repro.engine.timing.CostAccountant`.  The parent dispatches, gathers
and merges first, charge-free; only when the sharded result is fully in hand
does it replay the serial path's charges in the serial call order, so the
:class:`~repro.engine.timing.CostBreakdown` is bit-identical to
:func:`shard_execution_disabled` execution.  Any failure — a dead worker, a
pickling error, a gather timeout, an unorderable partial merge — abandons the
sharded attempt *before* any charge lands and the caller falls through to the
ordinary serial operator, which charges itself.

The planner records a :class:`ShardDecision` per physical plan; like
``ScanDecision`` and ``AggregateStrategy`` it carries the zone-epoch token and
the toggle state at derivation and is re-derived when either goes stale.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import pickle
import queue as queue_module
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import EncodedColumn, evaluate_predicate_mask
from repro.engine.column_store import ColumnStoreTable, compile_code_mask
from repro.engine.executor.agg_pushdown import (
    TIER_ZERO_SCAN,
    _partial_merge_safe,
    aggregate_pushdown_enabled,
)
from repro.engine.executor.aggregates import (
    merge_partition_partials,
    partition_partial_rows,
)
from repro.engine.timing import CostAccountant
from repro.query.ast import AggregationQuery, Query, SelectQuery

__all__ = [
    "ShardDecision",
    "ShardExecutionError",
    "derive_shard_decision",
    "get_worker_pool",
    "projected_parallel_ms",
    "shard_bounds",
    "shard_config",
    "shard_execution_disabled",
    "shard_execution_enabled",
    "shard_fan_out",
    "shard_min_rows",
    "shutdown_worker_pool",
    "try_sharded_aggregation",
    "try_sharded_select",
    "AGGREGATION_PARALLEL_COMPONENTS",
    "SELECT_PARALLEL_COMPONENTS",
]


# -- toggle and configuration ----------------------------------------------------------

_SHARD_ENABLED = True

#: Planner default fan-out: how many shards a sharded query scatters into.
_SHARD_FAN_OUT = 4

#: Tables below this row count never shard — dispatch overhead dominates.
_SHARD_MIN_ROWS = 200_000

#: Seconds the parent waits for any single gather before abandoning the pool.
_GATHER_TIMEOUT_S = 30.0


def shard_execution_enabled() -> bool:
    """Whether the sharded scatter/gather paths may run."""
    return _SHARD_ENABLED


@contextmanager
def shard_execution_disabled():
    """Force serial execution — the charge-identity reference for sharding."""
    global _SHARD_ENABLED
    previous = _SHARD_ENABLED
    _SHARD_ENABLED = False
    try:
        yield
    finally:
        _SHARD_ENABLED = previous


def shard_fan_out() -> int:
    return _SHARD_FAN_OUT


def shard_min_rows() -> int:
    return _SHARD_MIN_ROWS


@contextmanager
def shard_config(fan_out: Optional[int] = None, min_rows: Optional[int] = None):
    """Temporarily override the shard fan-out and/or eligibility floor.

    Tests use ``shard_config(min_rows=1)`` to shard small tables; recorded
    :class:`ShardDecision` objects embed the configuration they were derived
    under and go stale when it changes, exactly like a toggle flip.
    """
    global _SHARD_FAN_OUT, _SHARD_MIN_ROWS
    previous = (_SHARD_FAN_OUT, _SHARD_MIN_ROWS)
    if fan_out is not None:
        _SHARD_FAN_OUT = fan_out
    if min_rows is not None:
        _SHARD_MIN_ROWS = min_rows
    try:
        yield
    finally:
        _SHARD_FAN_OUT, _SHARD_MIN_ROWS = previous


class ShardExecutionError(RuntimeError):
    """A sharded attempt failed; the caller falls back to serial execution."""


# -- the planner-recorded decision -----------------------------------------------------


@dataclass(frozen=True)
class ShardDecision:
    """The planner's per-query sharding verdict, recorded on the access path.

    ``token`` is the zone-epoch token at derivation; ``enabled``/``pushdown``
    snapshot the toggles and ``config`` the ``(fan_out, min_rows)`` globals.
    :meth:`matches` is the staleness test — any mismatch forces the executor
    (or EXPLAIN) to re-derive, mirroring ``AggregateStrategy.matches``.
    """

    table: str
    fan_out: int
    bounds: Tuple[Tuple[int, int], ...]
    sharded: bool
    reason: str
    token: Tuple[Any, ...]
    enabled: bool
    pushdown: bool
    config: Tuple[int, int]
    query: Optional[Query] = None

    def matches(self, query: Query, token: Tuple[Any, ...]) -> bool:
        if self.enabled != shard_execution_enabled():
            return False
        if self.pushdown != aggregate_pushdown_enabled():
            return False
        if self.config != (_SHARD_FAN_OUT, _SHARD_MIN_ROWS):
            return False
        if self.token != token:
            return False
        if self.query is query:
            return True
        try:
            return bool(self.query == query)
        except Exception:
            return False

    def describe(self) -> str:
        if self.sharded:
            return f"fan-out {self.fan_out} ({self.reason})"
        return f"serial ({self.reason})"


def shard_bounds(num_rows: int, fan_out: int) -> Tuple[Tuple[int, int], ...]:
    """Balanced contiguous ``[start, stop)`` row ranges covering the table."""
    base, extra = divmod(num_rows, fan_out)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(fan_out):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return tuple(bounds)


def derive_shard_decision(path, query: Query) -> ShardDecision:
    """Derive the sharding verdict for *query* over *path*.

    Only single-table queries against a delta-free column store at or above
    the row floor shard.  Aggregations additionally require provably
    order-independent partial merges (the partition-partial NaN proof) and
    must not already be answered zone-free; selections require a predicate
    (an unfiltered SELECT is pure materialisation, which stays serial).
    """
    table = getattr(path, "table", None)
    token = path._zone_token()

    def verdict(sharded: bool, reason: str, fan_out: int = 0,
                bounds: Tuple[Tuple[int, int], ...] = ()) -> ShardDecision:
        return ShardDecision(
            table=getattr(table, "name", "?"), fan_out=fan_out, bounds=bounds,
            sharded=sharded, reason=reason, token=token,
            enabled=shard_execution_enabled(),
            pushdown=aggregate_pushdown_enabled(),
            config=(_SHARD_FAN_OUT, _SHARD_MIN_ROWS), query=query,
        )

    if not shard_execution_enabled():
        return verdict(False, "shard execution disabled")
    if getattr(path, "_inner", False):
        return verdict(False, "inner partition path")
    backend = getattr(table, "backend", None)
    if not isinstance(backend, ColumnStoreTable):
        return verdict(False, "not a plain column store")
    if table.delta_rows:
        return verdict(False, "delta rows pending merge")
    num_rows = table.num_rows
    if num_rows < _SHARD_MIN_ROWS:
        return verdict(False, f"below {_SHARD_MIN_ROWS}-row floor")
    predicate = query.predicate
    if isinstance(query, AggregationQuery):
        if query.joins:
            return verdict(False, "join query")
        safe, why = _partial_merge_safe(path, query)
        if not safe:
            return verdict(False, why)
        strategy = path.aggregate_decision_for(query)
        if (aggregate_pushdown_enabled()
                and strategy.tier == TIER_ZERO_SCAN
                and strategy.answer is not None):
            return verdict(False, "zero-scan answer")
    elif isinstance(query, SelectQuery):
        if predicate is None:
            return verdict(False, "unfiltered select")
    else:
        return verdict(False, "unsupported query type")
    if predicate is not None:
        if any(not table.schema.has_column(name) for name in predicate.columns()):
            return verdict(False, "unresolvable predicate column")
        if not path.decision_for(predicate).partitions[0].scan:
            return verdict(False, "zone-pruned scan")
    fan_out = min(_SHARD_FAN_OUT, num_rows)
    if fan_out < 2:
        return verdict(False, "fan-out below 2")
    return verdict(
        True, f"{fan_out} x ~{num_rows // fan_out} rows",
        fan_out=fan_out, bounds=shard_bounds(num_rows, fan_out),
    )


# -- worker pool over shared-memory code arrays ----------------------------------------

_NAMESPACE_COUNTER = itertools.count(1)


def _backend_namespace(backend: ColumnStoreTable) -> int:
    """A process-unique id for *backend* — table names alone can collide."""
    namespace = getattr(backend, "_shard_namespace", None)
    if namespace is None:
        namespace = next(_NAMESPACE_COUNTER)
        backend._shard_namespace = namespace
    return namespace


@contextmanager
def _attach_untracked():
    """Attach shared segments without registering with the resource tracker.

    The parent is the segments' sole owner, but ``SharedMemory`` registers
    every attach (Python 3.11 has no ``track=`` parameter).  A worker that let
    that registration through would either erase the parent's claim from a
    shared tracker (fork) or stand up its own tracker that unlinks the
    parent's live segments when the worker exits (spawn) — so workers
    suppress registration for the duration of the attach.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


class _ShardColumn:
    """Worker-side stand-in for ``CompressedColumn``: name, codes, dictionary."""

    __slots__ = ("name", "codes", "dictionary")

    def __init__(self, name: str, codes: np.ndarray, dictionary) -> None:
        self.name = name
        self.codes = codes
        self.dictionary = dictionary


def _worker_main(tasks, results) -> None:
    """Worker loop: attach shards, scan/aggregate them, never charge costs."""
    cache: Dict[Tuple[int, str], Tuple[int, Any, np.ndarray, Any]] = {}
    while True:
        blob = tasks.get()
        if not blob:
            break
        task = pickle.loads(blob)
        if task.get("kind") == "stop":
            break
        try:
            payload = _run_shard_task(task, cache)
            payload["task_id"] = task["task_id"]
        except BaseException as error:  # noqa: BLE001 — report, don't die
            payload = {"task_id": task.get("task_id"), "error": repr(error)}
        try:
            results.put(pickle.dumps(payload))
        except Exception as error:
            results.put(pickle.dumps(
                {"task_id": task.get("task_id"), "error": repr(error)}
            ))
    for _epoch, shm, _codes, _dictionary in cache.values():
        try:
            shm.close()
        except Exception:
            pass


def _attach_columns(task, cache) -> Dict[str, Tuple[np.ndarray, Any]]:
    """Resolve the task's columns to ``(codes, dictionary)`` pairs.

    New ``(column, epoch)`` arrivals in ``task["ship"]`` attach their shared
    segment (untracked) and displace any stale epoch in the cache.
    """
    namespace, epoch = task["namespace"], task["epoch"]
    for name, shm_name, length, dictionary in task["ship"]:
        key = (namespace, name)
        stale = cache.get(key)
        if stale is not None:
            try:
                stale[1].close()
            except Exception:
                pass
        with _attach_untracked():
            shm = shared_memory.SharedMemory(name=shm_name)
        codes = np.ndarray((length,), dtype=np.int64, buffer=shm.buf)
        cache[key] = (epoch, shm, codes, dictionary)
    columns: Dict[str, Tuple[np.ndarray, Any]] = {}
    for name in task["columns"]:
        entry = cache.get((namespace, name))
        if entry is None or entry[0] != epoch:
            raise ShardExecutionError(f"stale shard column {name!r}")
        columns[name] = (entry[2], entry[3])
    return columns


def _run_shard_task(task, cache) -> Dict[str, Any]:
    columns = _attach_columns(task, cache)
    start, stop = task["start"], task["stop"]
    num = stop - start
    query = task["query"]
    predicate = query.predicate
    positions: Optional[np.ndarray] = None
    if predicate is not None:
        shims = {
            name: _ShardColumn(name, codes[start:stop], dictionary)
            for name, (codes, dictionary) in columns.items()
        }
        compiled = compile_code_mask(predicate, shims, num)
        if compiled is not None:
            mask = compiled[0]
        else:
            arrays = {
                name: shim.dictionary.decode_array(shim.codes)
                for name, shim in shims.items()
                if name in predicate.columns()
            }
            mask = evaluate_predicate_mask(predicate, arrays, num)
        positions = np.nonzero(mask)[0]
    if task["kind"] == "select":
        matched = int(len(positions))
        return {
            "scanned": num, "matched": matched,
            "positions": (positions + start).astype(np.int64),
        }
    matched = num if positions is None else int(len(positions))
    available: Dict[str, Any] = {}
    for name in task["base_columns"]:
        codes, dictionary = columns[name]
        sliced = codes[start:stop]
        if positions is not None:
            sliced = sliced[positions]
        available[name] = EncodedColumn(np.ascontiguousarray(sliced), dictionary)
    from repro.engine.executor.operators import _assemble_inputs

    inputs, keys = _assemble_inputs(query, available)
    partials = partition_partial_rows(
        query.aggregates, list(query.group_by), inputs, keys, matched
    )
    return {"scanned": num, "matched": matched, "partials": partials}


class ShardWorkerPool:
    """A fixed crew of worker processes plus the parent's segment registry.

    One task queue per worker (shards go round-robin), one shared result
    queue.  ``_segments`` maps ``(namespace, column)`` to the published
    ``(epoch, shm, length, dictionary)``; superseded epochs are unlinked
    eagerly, everything else at :meth:`shutdown`.  ``_shipped`` tracks which
    ``(namespace, column, epoch)`` dictionaries each worker already holds.
    """

    def __init__(self, num_workers: int, start_method: str) -> None:
        self.num_workers = max(1, num_workers)
        self.start_method = start_method
        context = multiprocessing.get_context(start_method)
        self._results = context.Queue()
        self._workers: List[Tuple[Any, Any]] = []
        self._shipped: List[set] = []
        for _ in range(self.num_workers):
            tasks = context.Queue()
            process = context.Process(
                target=_worker_main, args=(tasks, self._results), daemon=True
            )
            process.start()
            self._workers.append((process, tasks))
            self._shipped.append(set())
        self._segments: Dict[Tuple[int, str], Tuple[int, Any, int, Any]] = {}

    def alive(self) -> bool:
        return bool(self._workers) and all(
            process.is_alive() for process, _tasks in self._workers
        )

    def publish(self, namespace: int, epoch: int, backend: ColumnStoreTable,
                names: Sequence[str]) -> Dict[str, Tuple[str, int]]:
        """Ensure current-epoch segments exist for *names*; return specs."""
        specs: Dict[str, Tuple[str, int]] = {}
        for name in names:
            key = (namespace, name)
            entry = self._segments.get(key)
            if entry is None or entry[0] != epoch:
                if entry is not None:
                    try:
                        entry[1].close()
                        entry[1].unlink()
                    except Exception:
                        pass
                codes = np.ascontiguousarray(
                    backend.compressed_column(name).codes, dtype=np.int64
                )
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, codes.nbytes)
                )
                np.ndarray(codes.shape, dtype=np.int64, buffer=shm.buf)[:] = codes
                entry = (epoch, shm, len(codes),
                         backend.compressed_column(name).dictionary)
                self._segments[key] = entry
            specs[name] = (entry[1].name, entry[2])
        return specs

    def ship_list(self, worker: int, namespace: int, epoch: int,
                  specs: Dict[str, Tuple[str, int]]) -> List[Tuple]:
        """The (column, segment, dictionary) payloads *worker* still lacks."""
        ship: List[Tuple] = []
        for name, (shm_name, length) in specs.items():
            token = (namespace, name, epoch)
            if token in self._shipped[worker]:
                continue
            dictionary = self._segments[(namespace, name)][3]
            ship.append((name, shm_name, length, dictionary))
            self._shipped[worker].add(token)
        return ship

    def run(self, tasks: Sequence[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
        """Scatter *tasks* (each pre-assigned a worker) and gather by id."""
        for task in tasks:
            process, task_queue = self._workers[task["worker"]]
            if not process.is_alive():
                raise ShardExecutionError("shard worker died")
            try:
                blob = pickle.dumps(task)
            except Exception as error:
                raise ShardExecutionError(
                    f"unpicklable shard task: {error!r}"
                ) from error
            task_queue.put(blob)
        gathered: Dict[int, Dict[str, Any]] = {}
        for _ in range(len(tasks)):
            try:
                result = pickle.loads(self._results.get(timeout=_GATHER_TIMEOUT_S))
            except queue_module.Empty as error:
                raise ShardExecutionError("shard gather timed out") from error
            error = result.get("error")
            if error is not None:
                raise ShardExecutionError(f"shard worker failed: {error}")
            gathered[result["task_id"]] = result
        return gathered

    def shutdown(self) -> None:
        for _process, task_queue in self._workers:
            try:
                task_queue.put(b"")
            except Exception:
                pass
        for process, task_queue in self._workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            try:
                task_queue.close()
                task_queue.cancel_join_thread()
            except Exception:
                pass
        try:
            self._results.close()
            self._results.cancel_join_thread()
        except Exception:
            pass
        for _epoch, shm, _length, _dictionary in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        self._segments.clear()
        self._workers = []
        self._shipped = []


_POOL: Optional[ShardWorkerPool] = None


def _default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def get_worker_pool(start_method: Optional[str] = None) -> ShardWorkerPool:
    """The process-wide pool, (re)created lazily with ``shard_fan_out`` workers.

    Passing a different *start_method* (the spawn determinism smoke test)
    replaces the current pool.  A pool with a dead worker is replaced too.
    """
    global _POOL
    method = start_method or _default_start_method()
    if _POOL is not None and (_POOL.start_method != method or not _POOL.alive()):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = ShardWorkerPool(num_workers=_SHARD_FAN_OUT, start_method=method)
    return _POOL


def shutdown_worker_pool() -> None:
    """Stop the workers and unlink every shared segment (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_worker_pool)


# -- parent-side scatter/gather --------------------------------------------------------


def _scatter_gather(backend: ColumnStoreTable, query: Query,
                    decision: ShardDecision, kind: str,
                    columns: Sequence[str]) -> List[Dict[str, Any]]:
    """Dispatch one task per shard and return results in shard order.

    Raises :class:`ShardExecutionError` on any failure; on a pool-level
    failure the pool is torn down so the next query starts a fresh crew.
    """
    pool = get_worker_pool()
    namespace = _backend_namespace(backend)
    epoch = backend.zone_epoch
    try:
        specs = pool.publish(namespace, epoch, backend, columns)
        tasks = []
        for index, (start, stop) in enumerate(decision.bounds):
            worker = index % pool.num_workers
            tasks.append({
                "kind": kind, "task_id": index, "worker": worker,
                "namespace": namespace, "epoch": epoch,
                "ship": pool.ship_list(worker, namespace, epoch, specs),
                "columns": list(columns), "start": start, "stop": stop,
                "query": query, "base_columns": list(columns),
            })
        gathered = pool.run(tasks)
    except ShardExecutionError:
        shutdown_worker_pool()
        raise
    return [gathered[index] for index in range(len(decision.bounds))]


def try_sharded_aggregation(path, query: AggregationQuery,
                            base_columns: Sequence[str],
                            accountant: CostAccountant) -> Optional[List[Dict[str, Any]]]:
    """Sharded grouped/ungrouped aggregation, or ``None`` to run serially.

    Scatter, gather and merge complete before the first charge lands; the
    serial collect-then-reduce charges are then replayed in call order, so a
    fallback can never leave a partial bill behind.
    """
    decision = path.shard_decision_for(query)
    if not decision.sharded:
        return None
    table = path.table
    try:
        results = _scatter_gather(
            table.backend, query, decision, "agg", list(base_columns)
        )
        rows = merge_partition_partials(
            query.aggregates, list(query.group_by),
            [result["partials"] for result in results],
        )
    except (ShardExecutionError, TypeError):
        return None
    matched = sum(result["matched"] for result in results)
    accountant.count_partition(table.name, scanned=True)
    backend = table.backend
    if query.predicate is not None:
        table.charge_filter_scan(query.predicate, accountant)
        for name in base_columns:
            backend.charge_encoded_read(name, matched, accountant)
    else:
        for name in base_columns:
            backend.charge_encoded_read(name, None, accountant)
    accountant.charge_aggregate_updates(matched * len(query.aggregates))
    if query.group_by:
        accountant.charge_group_by_updates(matched)
    accountant.record_shard_execution(
        table.name, decision.fan_out,
        tuple((result["scanned"], result["matched"]) for result in results),
    )
    return rows


def try_sharded_select(path, query: SelectQuery,
                       accountant: CostAccountant) -> Optional[List[Dict[str, Any]]]:
    """Sharded filtered selection, or ``None`` to run serially.

    Workers return global match positions; the parent concatenates them in
    shard order (== ascending row order), applies the limit and performs the
    row fetch itself — ``fetch_rows`` charges materialisation exactly as the
    serial path does, after the replayed scan charges.
    """
    decision = path.shard_decision_for(query)
    if not decision.sharded:
        return None
    table = path.table
    scan_columns = sorted(query.predicate.columns())
    try:
        results = _scatter_gather(
            table.backend, query, decision, "select", scan_columns
        )
    except ShardExecutionError:
        return None
    positions = np.concatenate(
        [result["positions"] for result in results]
    ).astype(np.int64)
    accountant.count_partition(table.name, scanned=True)
    table.charge_filter_scan(query.predicate, accountant)
    if query.limit is not None:
        positions = positions[: query.limit]
    rows = table.fetch_rows(positions, list(query.columns) or None, accountant)
    accountant.record_shard_execution(
        table.name, decision.fan_out,
        tuple((result["scanned"], result["matched"]) for result in results),
    )
    return rows


# -- parallel-runtime projection -------------------------------------------------------

#: Components an aggregation shard performs inside the workers — they shrink
#: to the largest shard's share under parallel execution.
AGGREGATION_PARALLEL_COMPONENTS: FrozenSet[str] = frozenset({
    "column_scan", "vector_compare", "predicate_eval", "dictionary_decode",
    "tuple_reconstruction", "aggregate_update", "group_by",
})

#: A sharded selection parallelises only the scan; the row fetch happens in
#: the parent after the gather.
SELECT_PARALLEL_COMPONENTS: FrozenSet[str] = frozenset({
    "column_scan", "vector_compare", "predicate_eval",
})


def projected_parallel_ms(cost, shard_rows: Sequence[Tuple[int, int]],
                          fan_out: int, device,
                          parallel_components: FrozenSet[str]) -> float:
    """Deterministic simulated runtime of a sharded execution, in ms.

    The serially-charged :class:`CostBreakdown` (bit-identical to the serial
    reference by construction) is re-projected onto the worker crew: the
    components in *parallel_components* ride the critical shard — the largest
    ``scanned`` share of ``shard_rows`` — while everything else stays serial,
    plus the device's per-shard dispatch overhead.
    """
    components = cost.components
    work_ns = sum(
        nanoseconds for name, nanoseconds in components.items()
        if name in parallel_components
    )
    serial_ns = cost.total_ns - work_ns
    scanned = [rows for rows, _matched in shard_rows]
    critical = max(scanned) / max(1, sum(scanned)) if scanned else 1.0
    return (serial_ns + work_ns * critical + device.shard_dispatch(fan_out)) / 1e6
