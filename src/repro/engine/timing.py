"""Analytic timing model of the hybrid-store engine.

The paper evaluates the storage advisor by measuring wall-clock runtimes on
SAP HANA.  A pure-Python re-implementation cannot reproduce those absolute
numbers — interpreter overhead would dwarf the row-vs-column asymmetries the
advisor reasons about.  Instead, every operator of our engine reports the
primitive work it performs (bytes scanned sequentially, random accesses,
dictionary decodes, hash probes, ...) to a :class:`CostAccountant`, and a
:class:`DeviceModel` converts that work into deterministic simulated time.

Because the counters are produced by *actual* query execution over *actual*
data, the simulated runtimes respond to data volume, compression rate, number
of aggregates, selectivity, and store choice exactly the way the paper's
measurements do, which is what the estimation-accuracy and recommendation
experiments require (see DESIGN.md, Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from repro.config import DeviceModelConfig

NS_PER_MS = 1_000_000.0


class DeviceModel:
    """Converts primitive work counts into simulated nanoseconds."""

    def __init__(self, config: Optional[DeviceModelConfig] = None) -> None:
        self.config = config or DeviceModelConfig()

    # Each method returns nanoseconds for the given amount of work.

    def sequential_read(self, num_bytes: float) -> float:
        return num_bytes * self.config.seq_read_ns_per_byte

    def random_accesses(self, count: float) -> float:
        return count * self.config.random_access_ns

    def dict_decodes(self, count: float) -> float:
        return count * self.config.dict_decode_ns

    def tuple_reconstructions(self, cells: float) -> float:
        return cells * self.config.tuple_reconstruct_ns

    def predicate_evals(self, count: float) -> float:
        return count * self.config.predicate_eval_ns

    def vector_compares(self, count: float) -> float:
        return count * self.config.vector_compare_ns

    def aggregate_updates(self, count: float) -> float:
        return count * self.config.aggregate_update_ns

    def group_by_updates(self, count: float) -> float:
        return count * self.config.group_by_update_ns

    def hash_inserts(self, count: float) -> float:
        return count * self.config.hash_insert_ns

    def hash_probes(self, count: float) -> float:
        return count * self.config.hash_probe_ns

    def row_appends(self, num_bytes: float) -> float:
        return num_bytes * self.config.row_append_ns_per_byte

    def row_value_updates(self, count: float) -> float:
        return count * self.config.row_update_value_ns

    def cs_value_inserts(self, count: float) -> float:
        return count * self.config.cs_insert_value_ns

    def cs_value_updates(self, count: float) -> float:
        return count * self.config.cs_update_value_ns

    def layout_conversions(self, cells: float) -> float:
        return cells * self.config.layout_conversion_ns_per_cell

    def query_overhead(self) -> float:
        return self.config.query_overhead_ns

    def partition_overhead(self, num_partitions: int) -> float:
        return max(0, num_partitions - 1) * self.config.partition_overhead_ns

    def shard_dispatch(self, fan_out: int) -> float:
        """Scatter/gather overhead of a *fan_out*-way sharded execution.

        Used only by the parallel-runtime projection
        (:func:`repro.engine.shard.projected_parallel_ms`) — never charged
        to a :class:`CostBreakdown`, which stays bit-identical to serial.
        """
        return max(0, fan_out) * self.config.shard_dispatch_ns


@dataclass
class CostBreakdown:
    """Simulated time of one query, broken down by cost component."""

    components: Dict[str, float] = field(default_factory=dict)

    def add(self, component: str, nanoseconds: float) -> None:
        if nanoseconds < 0:
            raise ValueError(f"negative cost for component {component!r}")
        self.components[component] = self.components.get(component, 0.0) + nanoseconds

    def merge(self, other: "CostBreakdown") -> None:
        for component, nanoseconds in other.components.items():
            self.add(component, nanoseconds)

    @property
    def total_ns(self) -> float:
        return sum(self.components.values())

    @property
    def total_ms(self) -> float:
        return self.total_ns / NS_PER_MS

    def component_ms(self, component: str) -> float:
        return self.components.get(component, 0.0) / NS_PER_MS

    def items(self) -> Iterator[tuple]:
        return iter(sorted(self.components.items()))

    def as_dict_ms(self) -> Dict[str, float]:
        return {name: ns / NS_PER_MS for name, ns in self.components.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v / NS_PER_MS:.3f}ms" for k, v in sorted(self.components.items()))
        return f"CostBreakdown(total={self.total_ms:.3f}ms, {parts})"


class CostAccountant:
    """Accumulates the simulated cost of one query execution.

    Operators call the ``charge_*`` helpers; the accountant translates the work
    into nanoseconds with its :class:`DeviceModel` and tags it with a component
    label so that tests and benchmarks can inspect where the time goes.
    """

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        self.device = device or DeviceModel()
        self.breakdown = CostBreakdown()
        # Per-table partition telemetry: how many prunable partitions each
        # table's access path scanned vs. skipped (zone-map pruning).  Pure
        # counters — they never contribute simulated time; EXPLAIN ANALYZE
        # reports them next to the plan's predicted pruning.
        self._partition_counts: Dict[str, list] = {}
        # Per-table aggregate-pushdown strategy the execution consumed —
        # telemetry only, reported by EXPLAIN ANALYZE next to the plan's
        # recorded strategy.
        self._agg_strategies: Dict[str, str] = {}
        # Per-table delta/main telemetry: rows a scan read from the
        # dictionary-encoded main vs the write-optimised delta.  Counters
        # only — the charges are logical (main + delta) and identical either
        # way; EXPLAIN ANALYZE reports these so merge pressure is visible.
        self._delta_scans: Dict[str, list] = {}
        # Per-table shard telemetry: the fan-out and per-shard
        # ``(rows scanned, rows matched)`` of a sharded scatter/gather
        # execution.  Counters only — sharding replays the serial charges
        # bit-identically; EXPLAIN ANALYZE reports these per shard.
        self._shard_execs: Dict[str, tuple] = {}
        # Per-table degradation-ladder telemetry: a description of each walk
        # down the ladder (e.g. "shard-parallel -> retry x1 -> serial (...)")
        # taken while answering this query.  Telemetry only — a degraded
        # query charges exactly what the serial path charges; EXPLAIN
        # ANALYZE renders these so a silent fallback stays visible.
        self._degradations: Dict[str, str] = {}

    # -- generic ---------------------------------------------------------------

    def charge_ns(self, component: str, nanoseconds: float) -> None:
        self.breakdown.add(component, nanoseconds)

    def charge_query_overhead(self) -> None:
        self.breakdown.add("query_overhead", self.device.query_overhead())

    def charge_partition_overhead(self, num_partitions: int) -> None:
        self.breakdown.add(
            "partition_overhead", self.device.partition_overhead(num_partitions)
        )

    # -- scans -----------------------------------------------------------------

    def charge_sequential_read(self, component: str, num_bytes: float) -> None:
        self.breakdown.add(component, self.device.sequential_read(num_bytes))

    def charge_random_accesses(self, component: str, count: float) -> None:
        self.breakdown.add(component, self.device.random_accesses(count))

    def charge_dict_decodes(self, count: float) -> None:
        self.breakdown.add("dictionary_decode", self.device.dict_decodes(count))

    def charge_tuple_reconstructions(self, cells: float) -> None:
        self.breakdown.add(
            "tuple_reconstruction", self.device.tuple_reconstructions(cells)
        )

    def charge_predicate_evals(self, count: float) -> None:
        self.breakdown.add("predicate_eval", self.device.predicate_evals(count))

    def charge_vector_compares(self, count: float) -> None:
        self.breakdown.add("vector_compare", self.device.vector_compares(count))

    # -- aggregation and joins ---------------------------------------------------

    def charge_aggregate_updates(self, count: float) -> None:
        self.breakdown.add("aggregate_update", self.device.aggregate_updates(count))

    def charge_group_by_updates(self, count: float) -> None:
        self.breakdown.add("group_by", self.device.group_by_updates(count))

    def charge_hash_inserts(self, component: str, count: float) -> None:
        self.breakdown.add(component, self.device.hash_inserts(count))

    def charge_hash_probes(self, component: str, count: float) -> None:
        self.breakdown.add(component, self.device.hash_probes(count))

    # -- writes ------------------------------------------------------------------

    def charge_row_appends(self, num_bytes: float) -> None:
        self.breakdown.add("row_append", self.device.row_appends(num_bytes))

    def charge_row_value_updates(self, count: float) -> None:
        self.breakdown.add("row_update", self.device.row_value_updates(count))

    def charge_cs_value_inserts(self, count: float) -> None:
        self.breakdown.add("column_insert", self.device.cs_value_inserts(count))

    def charge_cs_value_updates(self, count: float) -> None:
        self.breakdown.add("column_update", self.device.cs_value_updates(count))

    def charge_layout_conversion(self, cells: float) -> None:
        self.breakdown.add("layout_conversion", self.device.layout_conversions(cells))

    # -- index maintenance ---------------------------------------------------------

    def charge_index_probe(self, count: float = 1.0) -> None:
        self.breakdown.add("index_probe", self.device.hash_probes(count))

    def charge_index_insert(self, count: float = 1.0) -> None:
        self.breakdown.add("index_insert", self.device.hash_inserts(count))

    # -- partition telemetry --------------------------------------------------------

    def count_partition(self, table: str, scanned: bool) -> None:
        """Record one partition of *table* as scanned or zone-skipped."""
        counts = self._partition_counts.setdefault(table, [0, 0])
        counts[0 if scanned else 1] += 1

    @property
    def scan_stats(self) -> Dict[str, "tuple[int, int]"]:
        """Per-table ``(partitions scanned, partitions skipped)`` counters."""
        return {
            table: (counts[0], counts[1])
            for table, counts in self._partition_counts.items()
        }

    def record_aggregate_strategy(self, table: str, description: str) -> None:
        """Record the aggregate-pushdown strategy consumed for *table*."""
        self._agg_strategies[table] = description

    @property
    def aggregate_strategies(self) -> Dict[str, str]:
        """Per-table aggregate-pushdown strategy descriptions."""
        return dict(self._agg_strategies)

    def record_delta_scan(self, table: str, main_rows: int, delta_rows: int) -> None:
        """Record one scan of *table* spanning main and delta rows."""
        counts = self._delta_scans.setdefault(table, [0, 0])
        counts[0] += main_rows
        counts[1] += delta_rows

    @property
    def delta_scans(self) -> Dict[str, "tuple[int, int]"]:
        """Per-table ``(main rows, delta rows)`` scanned by this query."""
        return {
            table: (counts[0], counts[1])
            for table, counts in self._delta_scans.items()
        }

    def record_shard_execution(
        self, table: str, fan_out: int, shards: "tuple"
    ) -> None:
        """Record a sharded execution of *table*.

        *shards* holds one ``(rows scanned, rows matched)`` pair per shard in
        shard order.
        """
        self._shard_execs[table] = (fan_out, tuple(shards))

    @property
    def shard_stats(self) -> Dict[str, tuple]:
        """Per-table ``(fan_out, ((scanned, matched), ...))`` of sharded scans."""
        return dict(self._shard_execs)

    def record_degradation(self, table: str, description: str) -> None:
        """Record one walk down the degradation ladder for *table*.

        *description* names the rungs walked and the triggering failure,
        e.g. ``"shard-parallel -> retry x1 -> serial (shard worker died)"``.
        """
        self._degradations[table] = description

    @property
    def degradations(self) -> Dict[str, str]:
        """Per-table degradation-ladder descriptions consumed by this query."""
        return dict(self._degradations)

    # -- results ----------------------------------------------------------------

    @property
    def total_ms(self) -> float:
        return self.breakdown.total_ms

    def snapshot(self) -> Mapping[str, float]:
        """Return a copy of the per-component costs (nanoseconds)."""
        return dict(self.breakdown.components)
