"""The hybrid-store execution engine (the paper's database substrate).

Public entry points:

* :class:`~repro.engine.database.HybridDatabase` — create tables, load data,
  execute queries and workloads, move tables between stores, partition tables.
* :class:`~repro.engine.schema.TableSchema` / :class:`~repro.engine.schema.Column`
  — schema definition.
* :class:`~repro.engine.types.Store` / :class:`~repro.engine.types.DataType`
  — store and type enums.
* :class:`~repro.engine.partitioning.TablePartitioning` and the partition
  specs — describing store-aware partitionings.
"""

from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.database import HybridDatabase, WorkloadRunResult
from repro.engine.partitioning import (
    HorizontalPartitionSpec,
    PartitionedTable,
    TablePartitioning,
    VerticalPartitionSpec,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.statistics import (
    ColumnStatistics,
    TableStatistics,
    compute_table_statistics,
    statistics_from_schema,
)
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant, CostBreakdown, DeviceModel
from repro.engine.types import DataType, Store

__all__ = [
    "Catalog",
    "CatalogEntry",
    "Column",
    "ColumnStatistics",
    "CostAccountant",
    "CostBreakdown",
    "DataType",
    "DeviceModel",
    "HorizontalPartitionSpec",
    "HybridDatabase",
    "PartitionedTable",
    "Store",
    "StoredTable",
    "TablePartitioning",
    "TableSchema",
    "TableStatistics",
    "VerticalPartitionSpec",
    "WorkloadRunResult",
    "compute_table_statistics",
    "statistics_from_schema",
]
