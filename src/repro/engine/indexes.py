"""Secondary index structures for the row store.

The paper's cost model distinguishes row-store point/range queries *with* an
index (selectivity-proportional cost) from those *without* one (full table
scan).  We provide two index types:

* :class:`HashIndex` — equality lookups, used for primary keys and uniqueness
  checks on insert.
* :class:`SortedIndex` — range lookups over an ordered key.

Indexes map key values to row positions inside the owning store.  They are
maintained by the store on insert/update/delete; the timing model charges
index maintenance separately (``index_insert`` / ``index_probe`` components).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class HashIndex:
    """Equality index from key value to the list of row positions."""

    def __init__(self, column: str, unique: bool = False) -> None:
        self.column = column
        self.unique = unique
        self._entries: Dict[Any, List[int]] = {}

    def __len__(self) -> int:
        return sum(len(positions) for positions in self._entries.values())

    @property
    def num_keys(self) -> int:
        return len(self._entries)

    def insert(self, key: Any, position: int) -> None:
        self._entries.setdefault(key, []).append(position)

    def contains(self, key: Any) -> bool:
        return key in self._entries

    def lookup(self, key: Any) -> List[int]:
        return list(self._entries.get(key, ()))

    def remove(self, key: Any, position: int) -> None:
        positions = self._entries.get(key)
        if not positions:
            return
        try:
            positions.remove(position)
        except ValueError:
            return
        if not positions:
            del self._entries[key]

    def update_key(self, old_key: Any, new_key: Any, position: int) -> None:
        self.remove(old_key, position)
        self.insert(new_key, position)

    def rebuild(self, keys: Iterable[Tuple[Any, int]]) -> None:
        self._entries.clear()
        for key, position in keys:
            self.insert(key, position)


class SortedIndex:
    """Ordered index supporting range lookups.

    Keys are kept in a sorted list alongside their row positions.  Lookups use
    binary search; maintenance on insert is O(n) in Python terms but, as with
    the dictionary, only the *modelled* cost matters for the experiments.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._keys: List[Any] = []
        self._positions: List[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    def insert(self, key: Any, position: int) -> None:
        index = bisect.bisect_right(self._keys, key)
        self._keys.insert(index, key)
        self._positions.insert(index, position)

    def remove(self, key: Any, position: int) -> None:
        index = bisect.bisect_left(self._keys, key)
        while index < len(self._keys) and self._keys[index] == key:
            if self._positions[index] == position:
                del self._keys[index]
                del self._positions[index]
                return
            index += 1

    def lookup(self, key: Any) -> List[int]:
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._positions[lo:hi]

    def range_lookup(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[int]:
        if low is None:
            lo = 0
        else:
            lo = (bisect.bisect_left(self._keys, low) if include_low
                  else bisect.bisect_right(self._keys, low))
        if high is None:
            hi = len(self._keys)
        else:
            hi = (bisect.bisect_right(self._keys, high) if include_high
                  else bisect.bisect_left(self._keys, high))
        return self._positions[lo:hi]

    def rebuild(self, keys: Sequence[Tuple[Any, int]]) -> None:
        ordered = sorted(keys, key=lambda pair: pair[0])
        self._keys = [key for key, _ in ordered]
        self._positions = [position for _, position in ordered]
