"""Data types and store identifiers of the hybrid-store engine.

The engine supports a compact set of SQL-ish data types.  Each type carries a
fixed width used by the timing model (for variable-length types the width is
the average in-memory footprint) and a *type cost factor* used by the cost
model's ``c_dataType`` adjustment (Section 3.1 of the paper: adaptation to the
data type is a multiplication with a constant value).
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import SchemaError


class Store(enum.Enum):
    """The two stores of a hybrid-store database."""

    ROW = "row"
    COLUMN = "column"

    @property
    def other(self) -> "Store":
        """Return the opposite store."""
        return Store.COLUMN if self is Store.ROW else Store.ROW

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DataType(enum.Enum):
    """Supported column data types."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DOUBLE = "double"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def width_bytes(self) -> int:
        """Average in-memory width of one value of this type, in bytes."""
        return _WIDTH_BYTES[self]

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can be aggregated with SUM/AVG."""
        return self in _NUMERIC_TYPES

    @property
    def cost_factor(self) -> float:
        """Relative processing cost of one value of this type.

        Integers are the baseline (1.0); wider or more complex types are more
        expensive to compare, hash and aggregate.  This mirrors the constant
        ``c_dataType`` adjustment of the paper's cost model.
        """
        return _COST_FACTORS[self]

    def coerce(self, value: Any) -> Any:
        """Coerce *value* to the Python representation of this type.

        Raises :class:`SchemaError` if the value cannot be represented.
        """
        if value is None:
            return None
        if type(value) is self._exact_type:
            # Already the canonical representation — the common case on every
            # bulk load, insert and store conversion.
            return value
        try:
            return self._coercer(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"value {value!r} is not valid for data type {self.value}"
            ) from exc


_WIDTH_BYTES = {
    DataType.INTEGER: 4,
    DataType.BIGINT: 8,
    DataType.DOUBLE: 8,
    DataType.DECIMAL: 12,
    DataType.VARCHAR: 24,
    DataType.DATE: 4,
    DataType.BOOLEAN: 1,
}

_NUMERIC_TYPES = frozenset(
    {DataType.INTEGER, DataType.BIGINT, DataType.DOUBLE, DataType.DECIMAL}
)

_COST_FACTORS = {
    DataType.INTEGER: 1.0,
    DataType.BIGINT: 1.1,
    DataType.DOUBLE: 1.25,
    DataType.DECIMAL: 1.6,
    DataType.VARCHAR: 2.2,
    DataType.DATE: 1.05,
    DataType.BOOLEAN: 0.8,
}


def _coerce_date(value: Any) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        return datetime.date.fromisoformat(value)
    if isinstance(value, int):
        # Days since the epoch; convenient for generators.
        return datetime.date(1970, 1, 1) + datetime.timedelta(days=value)
    raise ValueError(f"cannot interpret {value!r} as a date")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str) and value.lower() in ("true", "false"):
        return value.lower() == "true"
    raise ValueError(f"cannot interpret {value!r} as a boolean")


_COERCERS = {
    DataType.INTEGER: int,
    DataType.BIGINT: int,
    DataType.DOUBLE: float,
    DataType.DECIMAL: float,
    DataType.VARCHAR: str,
    DataType.DATE: _coerce_date,
    DataType.BOOLEAN: _coerce_bool,
}

#: Exact (canonical) Python type per data type: a value of exactly this type
#: passes :meth:`DataType.coerce` unchanged, so it can be returned as-is.
#: Exact type checks keep subclass corner cases (``bool`` for INTEGER,
#: ``datetime`` for DATE) on the slow, semantically-checked path.
_EXACT_TYPES = {
    DataType.INTEGER: int,
    DataType.BIGINT: int,
    DataType.DOUBLE: float,
    DataType.DECIMAL: float,
    DataType.VARCHAR: str,
    DataType.DATE: datetime.date,
    DataType.BOOLEAN: bool,
}

# Bind the per-type helpers as member attributes: coerce() runs on every cell
# of every load, and plain attribute access avoids an enum hash per value.
for _member in DataType:
    _member._exact_type = _EXACT_TYPES[_member]
    _member._coercer = _COERCERS[_member]
del _member
