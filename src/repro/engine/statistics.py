"""Basic table statistics (data characteristics).

The storage advisor's cost model consumes *data characteristics* from the
system catalog: number of rows, row width, per-column data types, distinct
counts and the compression rate achievable in the column store (Section 3.1
of the paper).  This module computes those statistics from a stored table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.engine.compression import code_width_bytes
from repro.engine.schema import TableSchema
from repro.engine.types import DataType, Store


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics of a single column.

    ``null_count``/``has_nan`` are known for per-partition statistics
    (derived from the exact zone synopses); whole-table statistics leave
    them at their conservative defaults (``None`` = unknown null count).
    """

    name: str
    dtype: DataType
    num_distinct: int
    min_value: Any = None
    max_value: Any = None
    null_count: Optional[int] = None
    has_nan: bool = False

    @property
    def width_bytes(self) -> int:
        return self.dtype.width_bytes

    @property
    def compression_rate(self) -> float:
        """Code-width-only compression estimate (ignores dictionary overhead).

        Prefer :meth:`compression_rate_for`, which amortises the dictionary
        over a known row count and matches the column store's own accounting.
        """
        if self.num_distinct <= 0:
            return 1.0
        return min(1.0, code_width_bytes(self.num_distinct) / self.dtype.width_bytes)

    def compression_rate_for(self, num_rows: int) -> float:
        """Dictionary-compression rate of this column for *num_rows* rows.

        Uses the same formula as the column store backend (code array plus the
        dictionary, relative to the raw column size) so that estimated and
        measured statistics agree.
        """
        if self.num_distinct <= 0 or num_rows <= 0:
            return 1.0
        code_bytes = num_rows * code_width_bytes(self.num_distinct)
        dict_bytes = self.num_distinct * self.dtype.width_bytes
        raw_bytes = num_rows * self.dtype.width_bytes
        return min(1.0, (code_bytes + dict_bytes) / raw_bytes)


@dataclass(frozen=True)
class PartitionStatistics:
    """Statistics of one prunable unit of a partitioned table.

    Mirrors the executor's prunable partitions (the ``main`` historic
    portion and the ``hot`` partition): exact per-column ``min``/``max``/
    ``null_count`` bounds derived from the zone synopses, which let the
    cost-model estimator price partition pruning exactly instead of from
    the whole-table range.  Per-partition distinct counts are not tracked
    (``num_distinct`` is 0); compression statistics stay table-level.
    """

    label: str
    num_rows: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)


@dataclass(frozen=True)
class TableStatistics:
    """Statistics of a whole table, as kept in the system catalog."""

    table: str
    num_rows: int
    row_width_bytes: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)
    store: Optional[Store] = None
    #: Per-partition synopsis statistics (partitioned tables only).
    partitions: Tuple["PartitionStatistics", ...] = ()

    def column(self, name: str) -> ColumnStatistics:
        return self.columns[name]

    def has_column(self, name: str) -> bool:
        return name in self.columns

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of these statistics (cached; the object is frozen).

        Two statistics objects computed from identical data get identical
        fingerprints, so content-keyed caches (the session plan cache, the
        cost model's estimate memo) survive a statistics refresh that did not
        actually change anything — and miss as soon as row counts, distinct
        counts, value ranges or the store annotation move.
        """
        cached = self.__dict__.get("_fingerprint") if hasattr(self, "__dict__") else None
        if cached is not None:
            return cached
        tokens = [
            self.table,
            str(self.num_rows),
            str(self.row_width_bytes),
            self.store.value if self.store is not None else "-",
        ]
        for name in sorted(self.columns):
            stats = self.columns[name]
            tokens.append(
                f"{name}:{stats.dtype.value}:{stats.num_distinct}"
                f":{stats.min_value!r}:{stats.max_value!r}"
            )
        for partition in self.partitions:
            tokens.append(f"[{partition.label}:{partition.num_rows}]")
            for name in sorted(partition.columns):
                stats = partition.columns[name]
                tokens.append(
                    f"{name}:{stats.min_value!r}:{stats.max_value!r}"
                    f":{stats.null_count!r}:{int(stats.has_nan)}"
                )
        digest = hashlib.blake2b("|".join(tokens).encode("utf-8"),
                                 digest_size=8).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    @property
    def compression_rate(self) -> float:
        """Average compression rate over all columns, weighted by raw width."""
        if not self.columns or self.num_rows == 0:
            return 1.0
        raw = sum(stats.width_bytes for stats in self.columns.values())
        compressed = sum(
            stats.width_bytes * stats.compression_rate_for(self.num_rows)
            for stats in self.columns.values()
        )
        return compressed / raw if raw else 1.0

    def column_compression_rate(self, name: str) -> float:
        if name in self.columns:
            return self.columns[name].compression_rate_for(self.num_rows)
        return self.compression_rate

    def column_compressed_bytes(self, name: str) -> float:
        """Estimated compressed footprint of one column (code array + dictionary)."""
        stats = self.columns[name]
        return stats.width_bytes * self.num_rows * self.column_compression_rate(name)

    def column_code_bytes(self, name: str) -> float:
        """Estimated bytes a sequential scan of one column reads (codes only)."""
        stats = self.columns[name]
        return self.num_rows * code_width_bytes(max(1, stats.num_distinct))

    def columns_width_bytes(self, names) -> int:
        return sum(self.columns[name].width_bytes for name in names if name in self.columns)

    def scaled(self, num_rows: int) -> "TableStatistics":
        """Return a copy of these statistics for a hypothetical row count.

        Used by the calibration microbenchmarks and by what-if estimation.
        Distinct counts are capped at the new row count.
        """
        columns = {
            name: ColumnStatistics(
                name=stats.name,
                dtype=stats.dtype,
                num_distinct=min(stats.num_distinct, num_rows) if num_rows else 0,
                min_value=stats.min_value,
                max_value=stats.max_value,
            )
            for name, stats in self.columns.items()
        }
        # Hypothetical row counts invalidate the per-partition synopses.
        return TableStatistics(
            table=self.table,
            num_rows=num_rows,
            row_width_bytes=self.row_width_bytes,
            columns=columns,
            store=self.store,
        )


def statistics_from_schema(
    schema: TableSchema,
    num_rows: int,
    distinct_counts: Optional[Dict[str, int]] = None,
    value_ranges: Optional[Dict[str, Tuple[Any, Any]]] = None,
    store: Optional[Store] = None,
) -> TableStatistics:
    """Build (approximate) statistics from a schema without data.

    This is the *offline mode* input path: the administrator supplies expected
    row counts and optionally distinct counts per column; everything else is
    derived from the schema.  Columns without an explicit distinct count
    default to ``min(num_rows, 1000)`` distinct values, and primary-key
    columns to ``num_rows``.
    """
    distinct_counts = distinct_counts or {}
    value_ranges = value_ranges or {}
    columns = {}
    for column in schema.columns:
        if column.name in distinct_counts:
            distinct = distinct_counts[column.name]
        elif column.primary_key:
            distinct = num_rows
        elif column.dtype is DataType.BOOLEAN:
            distinct = 2
        else:
            distinct = min(num_rows, 1000)
        low, high = value_ranges.get(column.name, (None, None))
        columns[column.name] = ColumnStatistics(
            name=column.name,
            dtype=column.dtype,
            num_distinct=max(0, int(distinct)),
            min_value=low,
            max_value=high,
        )
    return TableStatistics(
        table=schema.name,
        num_rows=num_rows,
        row_width_bytes=schema.row_width_bytes,
        columns=columns,
        store=store,
    )


def compute_table_statistics(table) -> TableStatistics:
    """Compute exact statistics from a stored (or partitioned) table.

    *table* is anything exposing ``schema``, ``num_rows``,
    ``column_distinct_count`` and ``column_min_max`` — both store backends,
    :class:`~repro.engine.table.StoredTable` and
    :class:`~repro.engine.partitioning.PartitionedTable` qualify.
    """
    schema: TableSchema = table.schema
    columns = {}
    for column in schema.columns:
        distinct = table.column_distinct_count(column.name)
        low, high = table.column_min_max(column.name)
        columns[column.name] = ColumnStatistics(
            name=column.name,
            dtype=column.dtype,
            num_distinct=distinct,
            min_value=low,
            max_value=high,
        )
    partitions: Tuple[PartitionStatistics, ...] = ()
    zone_units = getattr(table, "partition_zone_units", None)
    if callable(zone_units):
        # Partitioned tables: record each prunable unit's exact synopsis so
        # the estimator can price partition pruning per unit.
        recorded = []
        for label, num_rows, zones in zone_units():
            unit_columns = {
                name: ColumnStatistics(
                    name=name,
                    dtype=schema.column(name).dtype,
                    num_distinct=0,
                    min_value=zone.min_value,
                    max_value=zone.max_value,
                    null_count=zone.null_count,
                    has_nan=zone.has_nan,
                )
                for name, zone in zones.items()
            }
            recorded.append(
                PartitionStatistics(
                    label=label, num_rows=num_rows, columns=unit_columns
                )
            )
        partitions = tuple(recorded)
    store = getattr(table, "store", None)
    return TableStatistics(
        table=schema.name,
        num_rows=table.num_rows,
        row_width_bytes=schema.row_width_bytes,
        columns=columns,
        store=store if isinstance(store, Store) else None,
        partitions=partitions,
    )
