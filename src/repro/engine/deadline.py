"""Query deadlines and cooperative cancellation.

``Session.execute(timeout=...)`` arms a per-query deadline for the duration
of the statement via :func:`query_deadline`.  Execution is single-threaded,
so cancellation is *cooperative*: long-running stages call
:func:`deadline_check` at natural yield points — the executor before each
operator, the access paths before each collect, the materialized-view
refresh before each unit recompute, and (most importantly) the shard gather
loop, which polls with a short interval so even a wedged worker process is
abandoned within one poll of the deadline.

The contract on expiry is strict: :class:`~repro.errors.QueryTimeoutError`
propagates before any :class:`~repro.engine.timing.CostBreakdown` is handed
to the caller (sharded execution charges nothing until the gather is fully
in hand, so a cancelled query bills nothing), and the shard pool repairs any
worker it had to abandon, so the next query runs shard-parallel again.

Deadlines nest: an inner ``query_deadline`` can only tighten the deadline an
outer one armed, never extend it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import QueryTimeoutError

__all__ = [
    "active_deadline",
    "deadline_check",
    "deadline_remaining",
    "query_deadline",
]

#: The armed ``(monotonic deadline, requested timeout seconds)``, or ``None``.
_DEADLINE: Optional[tuple] = None


@contextmanager
def query_deadline(timeout_s: Optional[float]) -> Iterator[None]:
    """Arm a deadline *timeout_s* seconds from now for the ``with`` body.

    ``None`` is a no-op (no deadline).  Nested deadlines only ever tighten:
    the effective deadline is the minimum of the armed ones.
    """
    if timeout_s is None:
        yield
        return
    global _DEADLINE
    previous = _DEADLINE
    candidate = (time.monotonic() + max(0.0, timeout_s), timeout_s)
    if previous is None or candidate[0] < previous[0]:
        _DEADLINE = candidate
    try:
        yield
    finally:
        _DEADLINE = previous


def active_deadline() -> Optional[float]:
    """The armed monotonic deadline, or ``None`` when no timeout is set."""
    return None if _DEADLINE is None else _DEADLINE[0]


def deadline_remaining() -> Optional[float]:
    """Seconds until the armed deadline (clamped at 0), or ``None``."""
    if _DEADLINE is None:
        return None
    return max(0.0, _DEADLINE[0] - time.monotonic())


def deadline_check() -> None:
    """Raise :class:`QueryTimeoutError` if the armed deadline has expired."""
    if _DEADLINE is not None and time.monotonic() >= _DEADLINE[0]:
        raise QueryTimeoutError(
            f"query exceeded its {_DEADLINE[1]:.3f}s deadline",
            timeout_s=_DEADLINE[1],
        )
