"""The row store backend.

Rows are stored tuple-wise: each row is a list of values in schema column
order.  This layout makes complete-tuple accesses, inserts and in-place
updates cheap, while any scan — even one that only needs a single attribute —
has to read full tuples (the row store's defining cost characteristic in the
paper's cost model).

Cost accounting (see :mod:`repro.engine.timing`):

* a full scan charges sequential traffic of ``num_rows × row_width`` bytes,
* an index-assisted lookup charges index probes plus one random access per
  qualifying row,
* inserts charge a primary-key uniqueness probe, an append of ``row_width``
  bytes and index maintenance,
* updates charge one in-place value write per affected cell.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import (
    ColumnBatch,
    EncodedColumn,
    evaluate_predicate_mask,
    values_to_array,
)
from repro.engine.indexes import HashIndex, SortedIndex
from repro.engine.schema import TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.engine.zonemap import ColumnZone, next_zone_epoch, widen_zone
from repro.errors import ExecutionError, SchemaError
from repro.query.predicates import Between, CompareOp, Comparison, Predicate


class InternedDictionary:
    """Read-only sorted dictionary over a row-store string column.

    The row store keeps values uncompressed; this dictionary exists purely as
    a *wall-clock* cache: ``np.unique``-factorizing 100k strings costs ~20 ms,
    so the factorization is computed once per table state and handed to the
    executor as an :class:`~repro.engine.batch.EncodedColumn`, whose group-by
    runs on the int codes in O(n).  It mirrors the subset of the
    :class:`~repro.engine.compression.ColumnDictionary` interface the batch
    pipeline consumes.  Interning never changes a query's *charged* cost —
    the row store still bills full-width tuple scans.

    Only pure-string columns are interned (numpy ``U`` dtype), so the
    dictionary can never contain NULL or NaN entries.
    """

    __slots__ = ("values_array",)

    def __init__(self, values_array: np.ndarray) -> None:
        self.values_array = values_array

    def __len__(self) -> int:
        return len(self.values_array)

    @property
    def nan_code(self) -> Optional[int]:
        return None

    def decode(self, code: int) -> Any:
        return self.values_array[code]

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        return self.values_array[codes]


class RowStoreTable:
    """In-memory row-oriented table."""

    store = Store.ROW

    def __init__(self, schema: TableSchema, create_pk_index: bool = True) -> None:
        self.schema = schema
        self._rows: List[List[Any]] = []
        self._hash_indexes: Dict[str, HashIndex] = {}
        self._sorted_indexes: Dict[str, SortedIndex] = {}
        # Per-column numpy views of the tuple data, built lazily on the first
        # scan and reused until the next mutation.  Scans and aggregations of
        # a row-store table are served from these arrays; the *cost* charged
        # stays the full-width tuple scan of the row-store model.
        self._column_cache: Dict[str, np.ndarray] = {}
        # Per-column interning/factorization cache for string columns:
        # column -> (codes aligned with the rows, sorted InternedDictionary).
        # Invalidated exactly like _column_cache (popped on update, cleared
        # on delete/bulk rebuild); appends extend the codes with just the new
        # suffix when the new values already intern, else rebuild lazily.
        self._factorized: Dict[str, Tuple[np.ndarray, InternedDictionary]] = {}
        # Zone-map state: every mutator bumps the epoch; per-column synopses
        # are rebuilt lazily from the cached column views (``column_zone``).
        self._zone_epoch = next_zone_epoch()
        self._zone_cache: Dict[str, Tuple[int, Optional[ColumnZone]]] = {}
        self._pk_column: Optional[str] = None
        if create_pk_index and len(schema.primary_key) == 1:
            # The primary key gets both an equality (hash) and a range (sorted)
            # index, mirroring a B-tree primary index in a real row store.
            self._pk_column = schema.primary_key[0]
            self._hash_indexes[self._pk_column] = HashIndex(self._pk_column, unique=True)
            self._sorted_indexes[self._pk_column] = SortedIndex(self._pk_column)

    # -- basic properties --------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def row_width_bytes(self) -> int:
        return self.schema.row_width_bytes

    @property
    def memory_bytes(self) -> float:
        return self.num_rows * self.row_width_bytes

    def compression_rate(self, column: Optional[str] = None) -> float:
        """The row store keeps data uncompressed."""
        return 1.0

    def has_index(self, column: str) -> bool:
        return column in self._hash_indexes or column in self._sorted_indexes

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._hash_indexes) | set(self._sorted_indexes)))

    # -- index management ----------------------------------------------------------

    def create_hash_index(self, column: str) -> None:
        self.schema.column(column)
        if column in self._hash_indexes:
            return
        index = HashIndex(column)
        position = self.schema.index_of(column)
        index.rebuild((row[position], i) for i, row in enumerate(self._rows))
        self._hash_indexes[column] = index

    def create_sorted_index(self, column: str) -> None:
        self.schema.column(column)
        if column in self._sorted_indexes:
            return
        index = SortedIndex(column)
        position = self.schema.index_of(column)
        index.rebuild([(row[position], i) for i, row in enumerate(self._rows)])
        self._sorted_indexes[column] = index

    # -- loading and modification ----------------------------------------------------

    def insert_rows(
        self, rows: Sequence[Mapping[str, Any]], accountant: Optional[CostAccountant] = None
    ) -> List[int]:
        """Insert validated rows, returning their positions.

        Zone maps are maintained *incrementally* here: fresh cached synopses
        are widened with just the appended values (OLTP inserts must not
        force an O(n) zone rebuild on the next filtered scan).
        """
        fresh_zones = self._fresh_zones()
        self._bump_zone_epoch()
        positions = []
        appended: List[List[Any]] = []
        column_names = self.schema.column_names
        try:
            for raw_row in rows:
                validated = self.schema.validate_row(raw_row)
                if self._pk_column is not None:
                    key = validated[self._pk_column]
                    pk_index = self._hash_indexes[self._pk_column]
                    if accountant is not None:
                        accountant.charge_index_probe()
                    if pk_index.contains(key):
                        raise ExecutionError(
                            f"duplicate primary key {key!r} in table {self.schema.name!r}"
                        )
                position = len(self._rows)
                row_values = [validated[name] for name in column_names]
                self._rows.append(row_values)
                appended.append(row_values)
                if accountant is not None:
                    accountant.charge_row_appends(self.row_width_bytes)
                for column, index in self._hash_indexes.items():
                    index.insert(validated[column], position)
                    if accountant is not None:
                        accountant.charge_index_insert()
                for column, index in self._sorted_indexes.items():
                    index.insert(validated[column], position)
                    if accountant is not None:
                        accountant.charge_index_insert()
                positions.append(position)
        finally:
            # Rows appended before a failure are inserted — fold exactly them.
            self._widen_zones(fresh_zones, appended)
        # Appends keep the column cache valid: _column_array extends stale
        # entries with just the new suffix.
        return positions

    def _fresh_zones(self) -> Dict[str, ColumnZone]:
        """Cached zone synopses that are current at the present epoch."""
        return {
            column: zone
            for column, (epoch, zone) in self._zone_cache.items()
            if epoch == self._zone_epoch and zone is not None
        }

    def _widen_zones(
        self, fresh_zones: Dict[str, ColumnZone], appended: List[List[Any]]
    ) -> None:
        """Re-stamp fresh synopses widened by the *appended* row lists."""
        if not fresh_zones:
            return
        for column, zone in fresh_zones.items():
            index = self.schema.index_of(column)
            widened = widen_zone(
                zone, (row[index] for row in appended), len(appended)
            )
            if widened is not None:
                self._zone_cache[column] = (self._zone_epoch, widened)
            else:
                self._zone_cache.pop(column, None)

    def bulk_load_columns(self, columns: Mapping[str, Sequence[Any]], num_rows: int) -> None:
        """Adopt already-validated column data (store-conversion fast path).

        Values must be coerced and primary-key-unique already (they come from
        the other store's backend); rows are assembled columnarly and the
        indexes rebuilt once, skipping per-row validation entirely.
        """
        if self._rows:
            raise ExecutionError("bulk_load_columns requires an empty table")
        self._bump_zone_epoch()
        names = self.schema.column_names
        aligned = [
            columns[name].tolist()
            if isinstance(columns[name], np.ndarray)
            else columns[name]
            for name in names
        ]
        self._rows = [list(row) for row in zip(*aligned)] if num_rows else []
        self._rebuild_indexes()
        self._column_cache.clear()
        self._factorized.clear()

    def bulk_load(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Load rows without cost accounting (used by generators and tests).

        Rows are validated up front (column-at-a-time) and appended in bulk,
        with one index rebuild at the end instead of per-row index
        maintenance; a validation error therefore leaves the table unchanged.
        Loads that would violate primary-key uniqueness take the per-row
        insert path, which raises at the offending row exactly like repeated
        :meth:`insert_rows` calls would.
        """
        rows = list(rows)
        if not rows:
            return
        self._bump_zone_epoch()
        column_names = self.schema.column_names
        columns = self.schema.validate_rows_columnar(rows)
        aligned = [columns[name] for name in column_names]
        if self._pk_column is not None:
            keys = columns[self._pk_column]
            existing = self._hash_indexes[self._pk_column]
            if len(set(keys)) != len(keys) or any(
                existing.contains(key) for key in keys
            ):
                # Let the per-row path raise (and keep its partial-state
                # semantics) on the duplicate.
                self.insert_rows(
                    [dict(zip(column_names, row)) for row in zip(*aligned)],
                    accountant=None,
                )
                return
        self._rows.extend(list(row) for row in zip(*aligned))
        self._rebuild_indexes()

    def update_rows(
        self,
        positions: Sequence[int],
        assignments: Mapping[str, Any],
        accountant: Optional[CostAccountant] = None,
    ) -> int:
        """Update *assignments* on the rows at *positions*."""
        if not assignments:
            return 0
        self._bump_zone_epoch()
        coerced = {
            name: self.schema.column(name).dtype.coerce(value)
            for name, value in assignments.items()
        }
        column_positions = {name: self.schema.index_of(name) for name in coerced}
        for position in positions:
            row = self._rows[position]
            for name, value in coerced.items():
                old_value = row[column_positions[name]]
                row[column_positions[name]] = value
                if name in self._hash_indexes:
                    self._hash_indexes[name].update_key(old_value, value, position)
                    if accountant is not None:
                        accountant.charge_index_insert()
                if name in self._sorted_indexes:
                    self._sorted_indexes[name].remove(old_value, position)
                    self._sorted_indexes[name].insert(value, position)
                    if accountant is not None:
                        accountant.charge_index_insert()
            if accountant is not None:
                accountant.charge_row_value_updates(len(coerced))
        if len(positions):
            # Only the assigned columns changed; their cache entries go, the
            # rest stay valid.
            for name in coerced:
                self._column_cache.pop(name, None)
                self._factorized.pop(name, None)
        return len(positions)

    def delete_rows(
        self, positions: Sequence[int], accountant: Optional[CostAccountant] = None
    ) -> int:
        """Physically remove the rows at *positions* and rebuild the indexes."""
        if len(positions) == 0:
            return 0
        self._bump_zone_epoch()
        doomed = set(int(p) for p in positions)
        self._rows = [row for i, row in enumerate(self._rows) if i not in doomed]
        if accountant is not None:
            accountant.charge_row_value_updates(len(doomed) * self.schema.num_columns)
        self._rebuild_indexes()
        self._column_cache.clear()
        self._factorized.clear()
        return len(doomed)

    def _rebuild_indexes(self) -> None:
        for column, index in self._hash_indexes.items():
            position = self.schema.index_of(column)
            index.rebuild((row[position], i) for i, row in enumerate(self._rows))
        for column, index in self._sorted_indexes.items():
            position = self.schema.index_of(column)
            index.rebuild([(row[position], i) for i, row in enumerate(self._rows)])

    # -- reads -----------------------------------------------------------------------

    def _column_array(self, column: str) -> np.ndarray:
        """Cached numpy view of one column.

        Appends extend a stale cache entry with just the new suffix (the
        common OLTP case: single-row inserts between scans); updates and
        deletes invalidate (see the mutators), forcing a rebuild.
        """
        array = self._column_cache.get(column)
        num_rows = len(self._rows)
        if array is not None and len(array) == num_rows:
            return array
        index = self.schema.index_of(column)
        if array is not None and len(array) < num_rows:
            suffix = values_to_array(
                [row[index] for row in self._rows[len(array):]]
            )
            if suffix.dtype == array.dtype:
                array = np.concatenate([array, suffix])
                self._column_cache[column] = array
                return array
        array = values_to_array([row[index] for row in self._rows])
        self._column_cache[column] = array
        return array

    def column_interned(self, column: str) -> Optional[EncodedColumn]:
        """The interned ``(codes, dictionary)`` view of a string column.

        Returns ``None`` for columns that do not intern (non-string dtype,
        NULLs present, empty table).  The factorization is cached per table
        state; appends since the last factorization re-intern only the new
        suffix when every new value is already in the dictionary.
        """
        array = self._column_array(column)
        num_rows = len(array)
        if num_rows == 0 or array.dtype.kind != "U":
            return None
        cached = self._factorized.get(column)
        if cached is not None:
            codes, dictionary = cached
            if len(codes) == num_rows:
                return EncodedColumn(codes, dictionary)
            if len(codes) < num_rows:
                suffix = array[len(codes):]
                slots = np.searchsorted(dictionary.values_array, suffix)
                slots = np.minimum(slots, len(dictionary) - 1)
                if bool((dictionary.values_array[slots] == suffix).all()):
                    codes = np.concatenate([codes, slots.astype(np.int64)])
                    self._factorized[column] = (codes, dictionary)
                    return EncodedColumn(codes, dictionary)
            # Shrunk or new values appeared: fall through to a full rebuild.
        uniques, inverse = np.unique(array, return_inverse=True)
        codes = inverse.reshape(-1).astype(np.int64)
        dictionary = InternedDictionary(uniques)
        self._factorized[column] = (codes, dictionary)
        return EncodedColumn(codes, dictionary)

    def filter_positions(
        self, predicate: Optional[Predicate], accountant: Optional[CostAccountant] = None
    ) -> Optional[np.ndarray]:
        """Return positions of rows matching *predicate* (``None`` = all rows).

        Uses an index when the predicate is a simple comparison or range on an
        indexed column; otherwise performs a full scan that reads every tuple.
        The full scan is evaluated vectorially over the cached column views
        when the predicate supports it (same cost charges either way).
        """
        if predicate is None:
            return None
        indexed = self._index_lookup(predicate, accountant)
        if indexed is not None:
            return indexed
        # Full scan: the row store reads complete tuples.
        if accountant is not None:
            accountant.charge_sequential_read(
                "row_scan", self.num_rows * self.row_width_bytes
            )
            accountant.charge_predicate_evals(self.num_rows)
        referenced = sorted(predicate.columns() & set(self.schema.column_names))
        arrays = {name: self._column_array(name) for name in referenced}
        mask = evaluate_predicate_mask(predicate, arrays, self.num_rows)
        return np.nonzero(mask)[0].astype(np.int64)

    def charge_filter_scan(
        self, predicate: Predicate, accountant: Optional[CostAccountant]
    ) -> None:
        """Replay the charges of :meth:`filter_positions` without scanning.

        Zone-pruned DML uses this: when the zones prove *predicate* matches
        no row, the scan is skipped but the query must cost exactly what the
        seed pipeline charged for scanning and matching nothing — an index
        probe plus zero fetches on the index path, a full tuple scan plus
        per-row predicate evaluations otherwise.
        """
        if accountant is None or predicate is None:
            return
        if self._answers_from_index(predicate):
            accountant.charge_index_probe()
            accountant.charge_random_accesses("row_fetch", 0)
            return
        accountant.charge_sequential_read(
            "row_scan", self.num_rows * self.row_width_bytes
        )
        accountant.charge_predicate_evals(self.num_rows)

    def _answers_from_index(self, predicate: Predicate) -> bool:
        """Whether :meth:`_index_lookup` would answer *predicate* from an index."""
        if isinstance(predicate, Comparison) and predicate.op is CompareOp.EQ:
            return (
                predicate.column in self._hash_indexes
                or predicate.column in self._sorted_indexes
            )
        if isinstance(predicate, Between):
            return predicate.column in self._sorted_indexes
        return (
            isinstance(predicate, Comparison)
            and predicate.op in (CompareOp.LT, CompareOp.LE, CompareOp.GT,
                                 CompareOp.GE)
            and predicate.column in self._sorted_indexes
        )

    def _index_lookup(
        self, predicate: Predicate, accountant: Optional[CostAccountant]
    ) -> Optional[np.ndarray]:
        """Try to answer *predicate* from an index; return None if impossible."""
        if isinstance(predicate, Comparison) and predicate.op is CompareOp.EQ:
            column = predicate.column
            if column in self._hash_indexes:
                if accountant is not None:
                    accountant.charge_index_probe()
                positions = self._hash_indexes[column].lookup(predicate.value)
                if accountant is not None:
                    accountant.charge_random_accesses("row_fetch", len(positions))
                return np.asarray(positions, dtype=np.int64)
            if column in self._sorted_indexes:
                if accountant is not None:
                    accountant.charge_index_probe()
                positions = self._sorted_indexes[column].lookup(predicate.value)
                if accountant is not None:
                    accountant.charge_random_accesses("row_fetch", len(positions))
                return np.asarray(positions, dtype=np.int64)
        if isinstance(predicate, Between) and predicate.column in self._sorted_indexes:
            if accountant is not None:
                accountant.charge_index_probe()
            positions = self._sorted_indexes[predicate.column].range_lookup(
                predicate.low, predicate.high, predicate.include_low, predicate.include_high
            )
            if accountant is not None:
                accountant.charge_random_accesses("row_fetch", len(positions))
            return np.asarray(positions, dtype=np.int64)
        if (
            isinstance(predicate, Comparison)
            and predicate.op in (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE)
            and predicate.column in self._sorted_indexes
        ):
            index = self._sorted_indexes[predicate.column]
            if accountant is not None:
                accountant.charge_index_probe()
            if predicate.op in (CompareOp.LT, CompareOp.LE):
                positions = index.range_lookup(
                    None, predicate.value, include_high=predicate.op is CompareOp.LE
                )
            else:
                positions = index.range_lookup(
                    predicate.value, None, include_low=predicate.op is CompareOp.GE
                )
            if accountant is not None:
                accountant.charge_random_accesses("row_fetch", len(positions))
            return np.asarray(positions, dtype=np.int64)
        return None

    def fetch_rows(
        self,
        positions: Optional[Sequence[int]],
        columns: Optional[Sequence[str]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> List[Dict[str, Any]]:
        """Materialise the rows at *positions* (``None`` = all rows).

        Fetching all rows is charged as a sequential scan; fetching selected
        positions is charged as one random access per row (the tuple is
        contiguous, so the projected columns come along for free).
        """
        names = self.schema.column_names
        selected = tuple(columns) if columns is not None else names
        for name in selected:
            self.schema.column(name)
        if positions is None:
            if accountant is not None:
                accountant.charge_sequential_read(
                    "row_scan", self.num_rows * self.row_width_bytes
                )
            rows = self._rows
            return [
                {name: row[i] for i, name in enumerate(names) if name in selected}
                if columns is not None
                else dict(zip(names, row))
                for row in rows
            ]
        if accountant is not None:
            accountant.charge_random_accesses("row_fetch", len(positions))
        result = []
        selected_idx = [(name, self.schema.index_of(name)) for name in selected]
        for position in positions:
            row = self._rows[position]
            result.append({name: row[i] for name, i in selected_idx})
        return result

    def column_values(
        self,
        column: str,
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> List[Any]:
        """Return the values of *column* (at *positions*, or for every row).

        Even a single-column read has to touch full tuples in the row store,
        which is exactly why the column store wins on wide analytical scans.
        """
        return self.column_array(column, positions, accountant).tolist()

    def column_array(
        self,
        column: str,
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`column_values`, served from the cached column view."""
        self.schema.column(column)
        if positions is None:
            if accountant is not None:
                accountant.charge_sequential_read(
                    "row_scan", self.num_rows * self.row_width_bytes
                )
            return self._column_array(column)
        if accountant is not None:
            accountant.charge_random_accesses("row_fetch", len(positions))
        gather = np.asarray(positions, dtype=np.int64)
        return self._column_array(column)[gather]

    def scan_columns(
        self,
        columns: Sequence[str],
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
    ) -> Dict[str, List[Any]]:
        """Read several columns with a *single* pass over the tuples.

        This is the row store's natural access path for multi-aggregate
        queries: one full-width scan, regardless of how many attributes are
        requested.
        """
        batch = self.scan_batch(columns, positions, accountant)
        return {name: batch.column_list(name) for name in columns}

    def scan_batch(
        self,
        columns: Sequence[str],
        positions: Optional[Sequence[int]] = None,
        accountant: Optional[CostAccountant] = None,
        encode: Sequence[str] = (),
    ) -> ColumnBatch:
        """Batch variant of :meth:`scan_columns` over the cached column views.

        Columns listed in *encode* (the operators pass the group-by keys) are
        served as interned :class:`~repro.engine.batch.EncodedColumn` pairs
        when they intern (see :meth:`column_interned`), so the group-by
        factorizes int codes instead of ``np.unique``-sorting strings.  The
        cost charged is still one full-width tuple scan (or one random access
        per requested row) — only the Python-level work is vectorized.
        """
        for name in columns:
            self.schema.column(name)
        encode_set = set(encode)

        def batch_column(name: str) -> Any:
            if name in encode_set:
                interned = self.column_interned(name)
                if interned is not None:
                    return interned
            return self._column_array(name)

        if positions is None:
            if accountant is not None:
                accountant.charge_sequential_read(
                    "row_scan", self.num_rows * self.row_width_bytes
                )
            return ColumnBatch(
                {name: batch_column(name) for name in columns},
                num_rows=self.num_rows,
            )
        if accountant is not None:
            accountant.charge_random_accesses("row_fetch", len(positions))
        gather = np.asarray(positions, dtype=np.int64)

        def gathered_column(name: str) -> Any:
            column = batch_column(name)
            if isinstance(column, EncodedColumn):
                return column.take(gather)
            return column[gather]

        return ColumnBatch(
            {name: gathered_column(name) for name in columns},
            num_rows=len(gather),
        )

    def all_rows(self) -> List[Dict[str, Any]]:
        """Return every row as a dict, without cost accounting (for conversions)."""
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self._rows]

    def snapshot(self) -> "MaterializedSnapshot":
        """A consistent read view of the table as of now.

        The row store mutates its tuples in place, so the snapshot
        materialises a copy of every row (cells are scalars — a shallow
        per-row copy is a deep copy of the data).
        """
        return MaterializedSnapshot(
            self.schema, [list(row) for row in self._rows]
        )

    # -- zone maps ----------------------------------------------------------------------

    def _bump_zone_epoch(self) -> None:
        self._zone_epoch = next_zone_epoch()

    @property
    def zone_epoch(self) -> int:
        """Monotonic counter bumped by every mutation (zone staleness token)."""
        return self._zone_epoch

    def column_zone(self, column: str) -> Optional[ColumnZone]:
        """The column's zone synopsis (cached per zone epoch).

        Computed from the cached column view: exact bounds, NULL count and
        NaN presence.  Columns whose value mix defeats ordering report
        ``None`` — no synopsis, never pruned.
        """
        cached = self._zone_cache.get(column)
        if cached is not None and cached[0] == self._zone_epoch:
            return cached[1]
        array = self._column_array(column)
        num_rows = len(array)
        low: Any = None
        high: Any = None
        null_count = 0
        has_nan = False
        if num_rows:
            if array.dtype.kind == "f":
                nan_mask = np.isnan(array)
                has_nan = bool(nan_mask.any())
                if not bool(nan_mask.all()):
                    low = float(np.nanmin(array))
                    high = float(np.nanmax(array))
            elif array.dtype.kind in "iub":
                low = array.min().item()
                high = array.max().item()
            elif array.dtype.kind == "U":
                # numpy's min/max ufuncs do not cover unicode dtypes.
                strings = array.tolist()
                low = min(strings)
                high = max(strings)
            else:
                non_null = [value for value in array.tolist() if value is not None]
                null_count = num_rows - len(non_null)
                reals = [
                    value
                    for value in non_null
                    if not (isinstance(value, float) and value != value)
                ]
                has_nan = len(reals) != len(non_null)
                if reals:
                    try:
                        low = min(reals)
                        high = max(reals)
                    except TypeError:
                        # Unorderable mix: no synopsis for this column.
                        self._zone_cache[column] = (self._zone_epoch, None)
                        return None
        zone = ColumnZone(
            min_value=low,
            max_value=high,
            null_count=null_count,
            num_rows=num_rows,
            has_nan=has_nan,
        )
        self._zone_cache[column] = (self._zone_epoch, zone)
        return zone

    # -- statistics helpers -----------------------------------------------------------

    def column_distinct_count(self, column: str) -> int:
        array = self._column_array(column)
        if array.dtype != object:
            return int(len(np.unique(array)))
        return len(set(array.tolist()))

    def column_min_max(self, column: str) -> Tuple[Any, Any]:
        array = self._column_array(column)
        if array.dtype.kind in "iufb" and len(array):
            return array.min().item(), array.max().item()
        values = [value for value in array.tolist() if value is not None]
        if not values:
            return None, None
        return min(values), max(values)


class MaterializedSnapshot:
    """Consistent read view of a row-store table at snapshot time.

    Holds a materialised copy of the rows — the row store has no frozen
    segments to share, so snapshotting it is an O(n) copy.  Exposes the same
    minimal read surface as
    :class:`~repro.engine.column_store.ColumnStoreSnapshot`.
    """

    __slots__ = ("schema", "_rows", "num_rows")

    def __init__(self, schema: TableSchema, rows: List[List[Any]]) -> None:
        self.schema = schema
        self._rows = rows
        self.num_rows = len(rows)

    def column_values(self, column: str) -> List[Any]:
        index = self.schema.column_names.index(column)
        return [row[index] for row in self._rows]

    def rows(self) -> List[Dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self._rows]
