"""Store-aware partitioning (Section 3.2 of the paper).

A table can be split

* **horizontally** — rows matching a predicate (the "hot", frequently
  inserted/updated rows) live in one partition, the remaining ("historic")
  rows in another, each partition in its own store; and/or
* **vertically** — the non-key attributes are divided into a row-store group
  (OLTP attributes) and a column-store group (OLAP attributes); both vertical
  parts carry the primary key so that complete tuples can be re-assembled by a
  join.

Both schemes may be combined: the hot horizontal partition stays un-split in
the row store while the historic partition is split vertically, exactly the
combination the paper describes for its TPC-H experiment.

:class:`PartitionedTable` manages the physical parts; the transparent query
rewriting that makes partitioned tables look like ordinary tables to queries
lives in :mod:`repro.engine.executor.rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.schema import TableSchema
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.errors import PartitioningError
from repro.query.predicates import Predicate


@dataclass(frozen=True)
class HorizontalPartitionSpec:
    """Split rows by a predicate: matching rows are the "hot" partition."""

    predicate: Predicate
    hot_store: Store = Store.ROW
    cold_store: Store = Store.COLUMN
    #: Newly inserted tuples go to the hot partition regardless of the
    #: predicate (the paper's "row-store partition for newly arriving tuples").
    route_inserts_to_hot: bool = True

    def describe(self) -> str:
        return (
            f"horizontal split: hot rows ({self.predicate!r}) -> {self.hot_store.value} store, "
            f"remaining rows -> {self.cold_store.value} store"
        )


@dataclass(frozen=True)
class VerticalPartitionSpec:
    """Split non-key attributes into a row-store and a column-store group."""

    row_store_columns: Tuple[str, ...]
    column_store_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "row_store_columns", tuple(self.row_store_columns))
        object.__setattr__(self, "column_store_columns", tuple(self.column_store_columns))
        overlap = set(self.row_store_columns) & set(self.column_store_columns)
        if overlap:
            raise PartitioningError(
                f"columns assigned to both vertical partitions: {sorted(overlap)}"
            )

    def validate(self, schema: TableSchema) -> None:
        """Check that the split covers exactly the non-key columns of *schema*."""
        key = set(schema.primary_key)
        assigned = set(self.row_store_columns) | set(self.column_store_columns)
        unknown = assigned - set(schema.column_names)
        if unknown:
            raise PartitioningError(
                f"vertical split of {schema.name!r} references unknown columns "
                f"{sorted(unknown)}"
            )
        in_key = assigned & key
        if in_key:
            raise PartitioningError(
                f"primary key columns {sorted(in_key)} are implicitly in both "
                "vertical partitions and must not be listed"
            )
        missing = set(schema.column_names) - key - assigned
        if missing:
            raise PartitioningError(
                f"vertical split of {schema.name!r} does not cover columns "
                f"{sorted(missing)}"
            )

    def store_of(self, column: str, schema: TableSchema) -> Store:
        """The store in which *column* (a non-key column) resides."""
        if column in self.row_store_columns:
            return Store.ROW
        if column in self.column_store_columns:
            return Store.COLUMN
        if column in schema.primary_key:
            # Key columns live in both parts; report the column store, which is
            # where analytical queries will read them from.
            return Store.COLUMN
        raise PartitioningError(f"column {column!r} is not covered by the vertical split")

    def describe(self) -> str:
        return (
            f"vertical split: {list(self.row_store_columns)} -> row store, "
            f"{list(self.column_store_columns)} -> column store"
        )


@dataclass(frozen=True)
class TablePartitioning:
    """Complete partitioning annotation of one table (catalog entry)."""

    horizontal: Optional[HorizontalPartitionSpec] = None
    vertical: Optional[VerticalPartitionSpec] = None

    def __post_init__(self) -> None:
        if self.horizontal is None and self.vertical is None:
            raise PartitioningError("a partitioning needs a horizontal or a vertical spec")

    def validate(self, schema: TableSchema) -> None:
        if self.vertical is not None:
            self.vertical.validate(schema)
        if self.horizontal is not None:
            unknown = self.horizontal.predicate.columns() - set(schema.column_names)
            if unknown:
                raise PartitioningError(
                    f"horizontal split of {schema.name!r} references unknown columns "
                    f"{sorted(unknown)}"
                )

    def describe(self) -> str:
        parts = []
        if self.horizontal is not None:
            parts.append(self.horizontal.describe())
        if self.vertical is not None:
            parts.append(self.vertical.describe())
        return "; ".join(parts)


class PartitionedTable:
    """A table physically split across stores according to a partitioning.

    Physical layout:

    * ``hot`` — present iff a horizontal spec exists; full-schema partition in
      the hot store that also receives new inserts.
    * ``main_parts`` — the historic portion of the table.  A single
      full-schema partition when there is no vertical spec, otherwise two
      vertical parts (row-store part and column-store part) that share the
      primary key and are kept row-aligned.
    """

    def __init__(self, schema: TableSchema, partitioning: TablePartitioning) -> None:
        partitioning.validate(schema)
        self.schema = schema
        self.partitioning = partitioning
        horizontal = partitioning.horizontal
        vertical = partitioning.vertical

        self.hot: Optional[StoredTable] = None
        if horizontal is not None:
            self.hot = StoredTable(schema, horizontal.hot_store)

        if vertical is not None:
            key = list(schema.primary_key)
            row_schema = schema.subset(key + list(vertical.row_store_columns))
            col_schema = schema.subset(key + list(vertical.column_store_columns))
            self._vertical_row_part = StoredTable(row_schema, Store.ROW)
            self._vertical_col_part = StoredTable(col_schema, Store.COLUMN)
            self.main_parts: List[StoredTable] = [
                self._vertical_row_part,
                self._vertical_col_part,
            ]
        else:
            cold_store = horizontal.cold_store if horizontal is not None else Store.COLUMN
            self._vertical_row_part = None
            self._vertical_col_part = None
            self.main_parts = [StoredTable(schema, cold_store)]
        self._label_integrity()

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: StoredTable,
        partitioning: TablePartitioning,
        accountant: Optional[CostAccountant] = None,
    ) -> "PartitionedTable":
        """Build a partitioned table from an existing unpartitioned one.

        Every migrated cell is charged as layout-conversion work, mirroring
        the data movement the advisor's ``ALTER TABLE ... PARTITION BY``
        recommendation would trigger.
        """
        partitioned = cls(table.schema, partitioning)
        num_rows = table.num_rows
        if accountant is not None:
            accountant.charge_layout_conversion(num_rows * table.schema.num_columns)
        # Migrate columnarly: the source serves whole columns, the horizontal
        # predicate routes rows with one vectorized mask, and each part adopts
        # its columns without rebuilding row dicts (the values were validated
        # when they entered the source table).
        columns = {
            name: table.column_values(name) for name in table.schema.column_names
        }
        partitioned._load_columns_trusted(columns, num_rows)
        return partitioned

    def load_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Bulk load rows, routing them by the horizontal predicate."""
        horizontal = self.partitioning.horizontal
        if horizontal is not None:
            hot_rows = [row for row in rows if horizontal.predicate.evaluate(row)]
            cold_rows = [row for row in rows if not horizontal.predicate.evaluate(row)]
            if self.hot is not None:
                self.hot.bulk_load(hot_rows)
        else:
            cold_rows = list(rows)
        self._load_main(cold_rows)

    def _load_main(self, rows: Sequence[Mapping[str, Any]]) -> None:
        if self._vertical_row_part is not None:
            row_cols = self._vertical_row_part.schema.column_names
            col_cols = self._vertical_col_part.schema.column_names
            self._vertical_row_part.bulk_load(
                [{name: row[name] for name in row_cols} for row in rows]
            )
            self._vertical_col_part.bulk_load(
                [{name: row[name] for name in col_cols} for row in rows]
            )
        else:
            self.main_parts[0].bulk_load(rows)

    def _load_columns_trusted(
        self, columns: Mapping[str, Sequence[Any]], num_rows: int
    ) -> None:
        """Bulk load already-validated column data into empty partitions.

        Used by :meth:`from_table`: the horizontal predicate is evaluated
        vectorially over the column arrays (falling back to row-at-a-time for
        predicates the vectorizer cannot express) and every part adopts its
        share columnarly.
        """
        from repro.engine.batch import evaluate_predicate_mask, values_to_array

        arrays = {name: values_to_array(values) for name, values in columns.items()}
        horizontal = self.partitioning.horizontal
        if horizontal is not None:
            referenced = {
                name: arrays[name]
                for name in horizontal.predicate.columns()
                if name in arrays
            }
            mask = evaluate_predicate_mask(horizontal.predicate, referenced, num_rows)
            if self.hot is not None:
                self.hot.backend.bulk_load_columns(
                    {name: array[mask] for name, array in arrays.items()},
                    int(mask.sum()),
                )
            keep = ~mask
            cold_arrays = {name: array[keep] for name, array in arrays.items()}
            cold_rows = int(keep.sum())
        else:
            cold_arrays = arrays
            cold_rows = num_rows
        if self._vertical_row_part is not None:
            for part in (self._vertical_row_part, self._vertical_col_part):
                part.backend.bulk_load_columns(
                    {name: cold_arrays[name] for name in part.schema.column_names},
                    cold_rows,
                )
        else:
            self.main_parts[0].backend.bulk_load_columns(cold_arrays, cold_rows)

    # -- identity -------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def is_partitioned(self) -> bool:
        return True

    @property
    def has_hot_partition(self) -> bool:
        return self.hot is not None

    @property
    def has_vertical_split(self) -> bool:
        return self._vertical_row_part is not None

    @property
    def vertical_row_part(self) -> Optional[StoredTable]:
        return self._vertical_row_part

    @property
    def vertical_col_part(self) -> Optional[StoredTable]:
        return self._vertical_col_part

    @property
    def num_rows(self) -> int:
        hot = self.hot.num_rows if self.hot is not None else 0
        return hot + self.main_num_rows

    @property
    def main_num_rows(self) -> int:
        return self.main_parts[0].num_rows

    @property
    def all_parts(self) -> List[StoredTable]:
        parts = list(self.main_parts)
        if self.hot is not None:
            parts.append(self.hot)
        return parts

    @property
    def memory_bytes(self) -> float:
        return sum(part.memory_bytes for part in self.all_parts)

    @property
    def delta_rows(self) -> int:
        """Rows buffered in the parts' column-store deltas."""
        return sum(part.delta_rows for part in self.all_parts)

    def merge_delta(self) -> int:
        """Merge every part's column-store delta into its main."""
        return sum(part.merge_delta() for part in self.all_parts)

    def snapshot(self) -> "PartitionedSnapshot":
        """A consistent read view across all parts as of now."""
        return PartitionedSnapshot(self)

    def compression_rate(self, column: Optional[str] = None) -> float:
        """Weighted compression rate across parts (1.0 for row-store parts)."""
        total_raw = 0.0
        total_compressed = 0.0
        for part in self.all_parts:
            if column is not None and not part.schema.has_column(column):
                continue
            raw = part.num_rows * (
                part.schema.column(column).width_bytes if column is not None
                else part.schema.row_width_bytes
            )
            total_raw += raw
            total_compressed += raw * part.compression_rate(column)
        if total_raw == 0:
            return 1.0
        return total_compressed / total_raw

    # -- integrity --------------------------------------------------------------------

    def _labelled_parts(self) -> List[Tuple[str, StoredTable]]:
        """Every physical part with its partition label (scrubber units).

        The labels extend ``partition_zone_units``'s ``main``/``hot`` naming:
        a vertically split main portion contributes ``main.row`` and
        ``main.column`` so a corruption error names the exact half.
        """
        if self.has_vertical_split:
            parts = [("main.row", self._vertical_row_part),
                     ("main.column", self._vertical_col_part)]
        else:
            parts = [("main", self.main_parts[0])]
        if self.hot is not None:
            parts.append(("hot", self.hot))
        return parts

    def _label_integrity(self) -> None:
        """Stamp each column-store part's integrity state with its label.

        Done at construction (and after hot-partition replacement) so a
        quarantine raised from a scan names the partition even before any
        scrub walked the table.  Row-store parts carry no integrity state.
        """
        for label, part in self._labelled_parts():
            state = getattr(part.backend, "integrity", None)
            if state is not None:
                state.partition = label

    def integrity_units(self) -> List[Tuple[Optional[str], Any]]:
        """Partition units for the integrity scrubber: ``(label, backend)``."""
        return [(label, part.backend) for label, part in self._labelled_parts()]

    # -- column routing ----------------------------------------------------------------

    def main_parts_for_columns(self, columns: Sequence[str]) -> List[StoredTable]:
        """The main (historic) parts that must be touched to read *columns*."""
        if not self.has_vertical_split:
            return [self.main_parts[0]]
        needed = []
        key = set(self.schema.primary_key)
        non_key = [name for name in columns if name not in key]
        if not non_key:
            # Key-only access is served from the row-store part, whose primary
            # key index makes point lookups cheap.
            return [self._vertical_row_part]
        row_part_needed = any(
            name in self._vertical_row_part.schema.column_names for name in non_key
        )
        col_part_needed = any(
            name in self._vertical_col_part.schema.column_names for name in non_key
        )
        if row_part_needed:
            needed.append(self._vertical_row_part)
        if col_part_needed:
            needed.append(self._vertical_col_part)
        return needed

    def part_containing(self, column: str) -> StoredTable:
        """The main part holding *column* (for single-column reads).

        Primary-key columns live in both vertical parts; they are read from
        the row-store part so that point predicates can use its index.
        """
        if not self.has_vertical_split:
            return self.main_parts[0]
        if column in set(self.schema.primary_key):
            return self._vertical_row_part
        if self._vertical_row_part.schema.has_column(column):
            return self._vertical_row_part
        return self._vertical_col_part

    # -- modification -------------------------------------------------------------------

    def insert_rows(
        self, rows: Sequence[Mapping[str, Any]], accountant: Optional[CostAccountant] = None
    ) -> int:
        """Insert rows, routing them to the hot partition when one exists."""
        horizontal = self.partitioning.horizontal
        if self.hot is not None and (horizontal is None or horizontal.route_inserts_to_hot):
            self.hot.insert_rows(rows, accountant)
            return len(rows)
        self._insert_into_main(rows, accountant)
        return len(rows)

    def _insert_into_main(
        self, rows: Sequence[Mapping[str, Any]], accountant: Optional[CostAccountant]
    ) -> None:
        if self.has_vertical_split:
            row_cols = self._vertical_row_part.schema.column_names
            col_cols = self._vertical_col_part.schema.column_names
            validated = [self.schema.validate_row(row) for row in rows]
            self._vertical_row_part.insert_rows(
                [{name: row[name] for name in row_cols} for row in validated], accountant
            )
            self._vertical_col_part.insert_rows(
                [{name: row[name] for name in col_cols} for row in validated], accountant
            )
        else:
            self.main_parts[0].insert_rows(rows, accountant)

    def migrate_hot_to_main(self, accountant: Optional[CostAccountant] = None) -> int:
        """Move every hot-partition row into the historic partition(s).

        This is the periodic data movement the paper describes ("in certain
        intervals, data is moved from the row-store partition to the
        column-store partition"), akin to a delta merge.
        """
        if self.hot is None or self.hot.num_rows == 0:
            return 0
        rows = self.hot.all_rows()
        if accountant is not None:
            accountant.charge_layout_conversion(len(rows) * self.schema.num_columns)
        self._insert_into_main(rows, accountant=None)
        moved = len(rows)
        self.hot = StoredTable(self.schema, self.partitioning.horizontal.hot_store)
        self._label_integrity()
        return moved

    def to_stored_table(self, store: Store,
                        accountant: Optional[CostAccountant] = None) -> StoredTable:
        """Collapse the partitioned table back into a single-store table."""
        rows = self.all_rows()
        if accountant is not None:
            accountant.charge_layout_conversion(len(rows) * self.schema.num_columns)
        table = StoredTable(self.schema, store)
        table.bulk_load(rows)
        return table

    # -- whole-table reads (no cost accounting; used for stats and conversions) -----------

    def all_rows(self) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        rows.extend(self._main_rows())
        if self.hot is not None:
            rows.extend(self.hot.all_rows())
        return rows

    def _main_rows(self) -> List[Dict[str, Any]]:
        if not self.has_vertical_split:
            return self.main_parts[0].all_rows()
        row_rows = self._vertical_row_part.all_rows()
        col_rows = self._vertical_col_part.all_rows()
        merged = []
        for left, right in zip(row_rows, col_rows):
            combined = dict(right)
            combined.update(left)
            merged.append(combined)
        return merged

    # -- statistics helpers ------------------------------------------------------------------

    def partition_zone_units(self):
        """Per prunable unit: ``(label, num_rows, {column: zone synopsis})``.

        The units mirror the executor's prunable partitions (``main`` and
        ``hot``); a vertically split main portion contributes each column's
        zone from the part that stores it.  Consumed by
        :func:`repro.engine.statistics.compute_table_statistics` to record
        per-partition statistics in the catalog.
        """
        main_zones = {}
        for column in self.schema.column_names:
            part = self.part_containing(column)
            if part.schema.has_column(column):
                zone = part.column_zone(column)
                if zone is not None:
                    main_zones[column] = zone
        units = [("main", self.main_num_rows, main_zones)]
        if self.hot is not None:
            hot_zones = {}
            for column in self.schema.column_names:
                zone = self.hot.column_zone(column)
                if zone is not None:
                    hot_zones[column] = zone
            units.append(("hot", self.hot.num_rows, hot_zones))
        return units

    def column_distinct_count(self, column: str) -> int:
        values = set()
        for part in self.all_parts:
            if part.schema.has_column(column):
                values.update(part.column_values(column))
        return len(values)

    def column_min_max(self, column: str) -> Tuple[Any, Any]:
        low, high = None, None
        for part in self.all_parts:
            if not part.schema.has_column(column):
                continue
            part_low, part_high = part.column_min_max(column)
            if part_low is None:
                continue
            low = part_low if low is None else min(low, part_low)
            high = part_high if high is None else max(high, part_high)
        return low, high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedTable(name={self.name!r}, rows={self.num_rows}, "
            f"layout={self.partitioning.describe()!r})"
        )


class PartitionedSnapshot:
    """Consistent read view across all parts of a partitioned table.

    Takes one backend snapshot per part at construction; the reassembly
    mirrors :meth:`PartitionedTable.all_rows` (main first — vertical halves
    zipped back together — then the hot partition).
    """

    __slots__ = ("schema", "_row_part", "_col_part", "_main", "_hot", "num_rows")

    def __init__(self, table: PartitionedTable) -> None:
        self.schema = table.schema
        self._row_part = self._col_part = self._main = self._hot = None
        if table.has_vertical_split:
            self._row_part = table.vertical_row_part.snapshot()
            self._col_part = table.vertical_col_part.snapshot()
            main_rows = self._row_part.num_rows
        else:
            self._main = table.main_parts[0].snapshot()
            main_rows = self._main.num_rows
        if table.hot is not None:
            self._hot = table.hot.snapshot()
            main_rows += self._hot.num_rows
        self.num_rows = main_rows

    def column_values(self, column: str) -> List[Any]:
        if self._main is not None:
            values = list(self._main.column_values(column))
        elif self.schema.has_column(column) and column in self._row_part.schema.column_names:
            values = list(self._row_part.column_values(column))
        else:
            values = list(self._col_part.column_values(column))
        if self._hot is not None:
            values.extend(self._hot.column_values(column))
        return values

    def rows(self) -> List[Dict[str, Any]]:
        if self._main is not None:
            rows = self._main.rows()
        else:
            rows = []
            for left, right in zip(self._row_part.rows(), self._col_part.rows()):
                combined = dict(right)
                combined.update(left)
                rows.append(combined)
        if self._hot is not None:
            rows.extend(self._hot.rows())
        return rows
