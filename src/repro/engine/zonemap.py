"""Zone maps: per-partition, per-column min/max + null-count synopses.

A :class:`ColumnZone` summarises one column of one physical partition (a
stored table): the range of its real values, how many cells are NULL, and
whether NaN is present.  :func:`zone_can_match` answers the only question a
scan needs: *can this predicate possibly match a row of this partition?*  A
``False`` answer is a proof — the partition is skipped before a single code
is touched; every uncertainty (missing zone, incomparable literal types,
``NOT`` sub-trees, parameter placeholders) degrades to ``True`` and the scan
proceeds exactly as without zone maps.

Zones are owned by the storage backends and are maintained under DML: the
column store derives bounds from its (incrementally maintained) sorted
dictionary plus an exact null count over the codes; the row store computes
them from its cached column views.  Both cache the synopsis per *zone
epoch* — a counter every mutator bumps — so a stale synopsis is rebuilt
lazily on the next consult (e.g. after deletes shrank a partition's range).

The access paths record their pruning verdicts in a :class:`ScanDecision`
(which the planner embeds in the physical plan); the decision carries the
zone epochs it was derived under, so a cached plan whose decision went stale
re-derives it at execution time instead of skipping rows it must not skip.

NULL/NaN semantics mirror the scalar predicate evaluator exactly:

* comparisons and ``BETWEEN`` never match NULL — an all-NULL zone cannot
  match them;
* ``BETWEEN`` is evaluated by *exclusion* (``value < low`` / ``> high``),
  which NaN never fails — a zone containing NaN can always match a BETWEEN;
* ``!=`` matches NaN rows (``nan != literal`` is true);
* ``IS NULL`` matches iff the zone has at least one NULL.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Tuple

from repro.query.predicates import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = [
    "ColumnZone",
    "PartitionScan",
    "ScanDecision",
    "is_nan",
    "zone_can_match",
    "zone_must_match",
    "zone_pruning_enabled",
    "zone_pruning_disabled",
]


_PRUNING_ENABLED = True

#: Zone epochs are drawn from one process-wide counter so that epochs are
#: unique across *backend instances*: a store conversion swaps a table's
#: backend, and a per-instance counter restarting at the same small numbers
#: could make a stale :class:`ScanDecision` token appear fresh.
_EPOCH_COUNTER = itertools.count(1)


def next_zone_epoch() -> int:
    """A fresh, process-unique zone epoch."""
    return next(_EPOCH_COUNTER)


def zone_pruning_enabled() -> bool:
    """Whether scans may skip partitions based on zone maps."""
    return _PRUNING_ENABLED


@contextmanager
def zone_pruning_disabled() -> Iterator[None]:
    """Disable zone-map pruning (differential tests, decode-path baselines)."""
    global _PRUNING_ENABLED
    previous = _PRUNING_ENABLED
    _PRUNING_ENABLED = False
    try:
        yield
    finally:
        _PRUNING_ENABLED = previous


def is_nan(value: Any) -> bool:
    """Whether *value* is a float NaN (the engine's one NaN test)."""
    return isinstance(value, float) and value != value


@dataclass(frozen=True)
class ColumnZone:
    """Synopsis of one column of one partition.

    ``min_value``/``max_value`` bound the real (non-NULL, non-NaN) values;
    both are ``None`` when the column holds no real value.  The bounds may be
    a superset of the live range (the column store's dictionary can retain
    entries updates orphaned) — pruning stays safe, it only loses
    opportunities.  ``null_count`` is ``None`` when unknown (zones derived
    from catalog statistics), which conservatively disables the NULL-based
    proofs.
    """

    min_value: Any
    max_value: Any
    null_count: Optional[int]
    num_rows: int
    has_nan: bool = False

    @property
    def all_null(self) -> bool:
        """Provably every cell is NULL (comparisons cannot match)."""
        return (
            self.null_count is not None
            and self.num_rows > 0
            and self.null_count >= self.num_rows
        )

    @property
    def has_values(self) -> bool:
        """Whether the zone contains at least one real (orderable) value."""
        return self.min_value is not None


def widen_zone(
    zone: ColumnZone, values, extra_rows: int
) -> Optional[ColumnZone]:
    """*zone* widened to additionally cover *values* (an appended batch).

    The storage backends use this to maintain a fresh synopsis through
    inserts without re-scanning the column.  Returns ``None`` when the
    values defeat the fold (unknown null count, unorderable mix) — the
    caller drops the cache entry and the next consult recomputes.
    """
    if zone.null_count is None:
        return None
    low = zone.min_value
    high = zone.max_value
    null_count = zone.null_count
    has_nan = zone.has_nan
    try:
        for value in values:
            if value is None:
                null_count += 1
            elif is_nan(value):
                has_nan = True
            elif low is None:
                low = high = value
            else:
                if value < low:
                    low = value
                if value > high:
                    high = value
    except TypeError:
        return None
    return ColumnZone(low, high, null_count, zone.num_rows + extra_rows, has_nan)


def zone_can_match(
    predicate: Optional[Predicate],
    zones: Mapping[str, ColumnZone],
    num_rows: int,
) -> bool:
    """Whether *predicate* can possibly match a row summarised by *zones*.

    ``False`` only when provably no row matches.  Columns missing from
    *zones*, unsupported predicate shapes and type errors from comparing a
    literal against the zone bounds all answer ``True`` (scan).  Empty
    partitions answer ``True`` as well: scanning them is free, and treating
    them like the seed pipeline keeps cost accounting unchanged.
    """
    if num_rows == 0 or predicate is None:
        return True
    try:
        return _can_match(predicate, zones)
    except TypeError:
        return True


def _can_match(predicate: Predicate, zones: Mapping[str, ColumnZone]) -> bool:
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, And):
        return all(_can_match(child, zones) for child in predicate.predicates)
    if isinstance(predicate, Or):
        return any(_can_match(child, zones) for child in predicate.predicates)
    if isinstance(predicate, Not):
        # NOT flips row-level truth, not zone-level possibility; proving
        # "every row matches the inner predicate" needs more than min/max.
        return True
    if isinstance(predicate, (Comparison, Between, InList, IsNull)):
        zone = zones.get(predicate.column)
        if zone is None:
            return True
        if isinstance(predicate, IsNull):
            return zone.null_count is None or zone.null_count > 0
        if zone.all_null:
            # Comparisons, BETWEEN and IN never match NULL (unless the
            # IN-list carries an explicit NULL, checked below).
            if isinstance(predicate, InList):
                return any(value is None for value in predicate.values)
            return False
        if isinstance(predicate, Comparison):
            return _comparison_can_match(predicate, zone)
        if isinstance(predicate, Between):
            return _between_can_match(predicate, zone)
        return _in_list_can_match(predicate, zone)
    return True


def _comparison_can_match(predicate: Comparison, zone: ColumnZone) -> bool:
    value = predicate.value
    if value is None:
        # ``column <op> NULL`` never matches, whatever the operator.
        return False
    op = predicate.op
    if op is CompareOp.NE:
        if zone.has_nan:
            return True  # nan != literal is true row-at-a-time
        if not zone.has_values:
            return False
        # Only provably empty when every real value equals the literal.
        return not (zone.min_value == zone.max_value == value)
    if is_nan(value):
        # Ordered comparison or equality against a NaN literal never matches.
        return False
    if not zone.has_values:
        # Only NaN (and/or NULL) cells: EQ/ordered comparisons never match NaN.
        return False
    if op is CompareOp.EQ:
        return not (value < zone.min_value or value > zone.max_value)
    if op is CompareOp.LT:
        return zone.min_value < value
    if op is CompareOp.LE:
        return zone.min_value <= value
    if op is CompareOp.GT:
        return zone.max_value > value
    return zone.max_value >= value


def _between_can_match(predicate: Between, zone: ColumnZone) -> bool:
    if zone.has_nan:
        # The scalar evaluator tests BETWEEN by exclusion, which NaN never
        # fails — a NaN cell matches any BETWEEN.
        return True
    if not zone.has_values:
        return False
    if predicate.low is not None:
        if predicate.include_low:
            if zone.max_value < predicate.low:
                return False
        elif zone.max_value <= predicate.low:
            return False
    if predicate.high is not None:
        if predicate.include_high:
            if zone.min_value > predicate.high:
                return False
        elif zone.min_value >= predicate.high:
            return False
    return True


def _in_list_can_match(predicate: InList, zone: ColumnZone) -> bool:
    for value in predicate.values:
        if value is None:
            if zone.null_count is None or zone.null_count > 0:
                return True
        elif is_nan(value):
            continue  # IN is chained equality; a NaN member matches nothing
        elif zone.has_values and not (
            value < zone.min_value or value > zone.max_value
        ):
            return True
    return False


def zone_must_match(
    predicate: Optional[Predicate],
    zones: Mapping[str, ColumnZone],
    num_rows: int,
) -> bool:
    """Whether *predicate* provably matches **every** row summarised by *zones*.

    The dual of :func:`zone_can_match`, used by aggregate pushdown: when a
    partition's zones prove the predicate all-true, an ungrouped
    COUNT/MIN/MAX can be answered from the synopses without scanning.  Every
    uncertainty — missing zone, unknown null count, incomparable literal
    types — degrades to ``False`` (not provable), which merely loses the
    optimisation.  NULL and NaN semantics mirror the scalar evaluator: a
    comparison never matches a NULL row (so a provably-all-true comparison
    needs a zero null count), ordered comparisons and equality never match
    NaN, while ``BETWEEN`` (tested by exclusion) and ``!=`` are satisfied by
    NaN rows.

    Empty partitions answer ``True``: the proof is vacuous and the partition
    contributes nothing either way.
    """
    if num_rows == 0 or predicate is None:
        return True
    try:
        return _must_match(predicate, zones)
    except TypeError:
        return False


def _must_match(predicate: Predicate, zones: Mapping[str, ColumnZone]) -> bool:
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, And):
        return all(_must_match(child, zones) for child in predicate.predicates)
    if isinstance(predicate, Or):
        # Sufficient (not necessary): one disjunct covering every row covers
        # the OR.  Mixed coverage across disjuncts stays unproven.
        return any(_must_match(child, zones) for child in predicate.predicates)
    if isinstance(predicate, Not):
        # NOT p matches every row exactly when p matches none — which is the
        # proof zone_can_match already provides.
        return not _can_match(predicate.predicate, zones)
    if not isinstance(predicate, (Comparison, Between, InList, IsNull)):
        return False
    zone = zones.get(predicate.column)
    if zone is None or zone.null_count is None:
        return False
    if isinstance(predicate, IsNull):
        return zone.null_count >= zone.num_rows
    if zone.null_count > 0:
        # Comparisons, BETWEEN and IN never match a NULL row.
        return False
    if isinstance(predicate, Comparison):
        return _comparison_must_match(predicate, zone)
    if isinstance(predicate, Between):
        return _between_must_match(predicate, zone)
    return _in_list_must_match(predicate, zone)


def _comparison_must_match(predicate: Comparison, zone: ColumnZone) -> bool:
    value = predicate.value
    if value is None:
        return False  # ``column <op> NULL`` matches nothing.
    op = predicate.op
    if op is CompareOp.NE:
        if is_nan(value):
            # ``x != NaN`` is true for every non-NaN cell; NaN cells also
            # satisfy it (NaN != NaN).
            return True
        if not zone.has_values:
            # Only NaN cells (nulls were excluded above): NaN != literal.
            return zone.num_rows > 0
        return bool(value < zone.min_value or value > zone.max_value)
    if is_nan(value):
        return False  # ordered/equality against NaN matches nothing
    if zone.has_nan or not zone.has_values:
        # NaN cells fail every ordered comparison and equality.
        return False
    if op is CompareOp.EQ:
        return bool(zone.min_value == zone.max_value == value)
    if op is CompareOp.LT:
        return bool(zone.max_value < value)
    if op is CompareOp.LE:
        return bool(zone.max_value <= value)
    if op is CompareOp.GT:
        return bool(zone.min_value > value)
    return bool(zone.min_value >= value)


def _between_must_match(predicate: Between, zone: ColumnZone) -> bool:
    # The scalar evaluator tests BETWEEN by exclusion (reject when
    # ``value < low`` / ``value > high``), which NaN never fails — NaN cells
    # always satisfy a BETWEEN, so only the real values need the range proof.
    if not zone.has_values:
        return zone.num_rows > 0  # all cells NaN (nulls excluded above)
    if predicate.low is not None:
        if predicate.include_low:
            if not zone.min_value >= predicate.low:
                return False
        elif not zone.min_value > predicate.low:
            return False
    if predicate.high is not None:
        if predicate.include_high:
            if not zone.max_value <= predicate.high:
                return False
        elif not zone.max_value < predicate.high:
            return False
    return True


def _in_list_must_match(predicate: InList, zone: ColumnZone) -> bool:
    # Provable only in the degenerate single-value case: every cell holds the
    # same value and the list contains it (NaN cells never match an IN).
    if zone.has_nan or not zone.has_values:
        return False
    if not zone.min_value == zone.max_value:
        return False
    return any(
        value is not None and not is_nan(value) and value == zone.min_value
        for value in predicate.values
    )


# -- scan decisions (recorded in plans, validated at execution) ---------------------


@dataclass(frozen=True)
class PartitionScan:
    """Verdict for one prunable unit of a table's storage."""

    partition: str  # "table", "main", or "hot"
    scan: bool
    reason: str = ""


@dataclass(frozen=True)
class ScanDecision:
    """The pruning decision of one table's access path for one predicate.

    ``token`` captures the zone epochs of the physical parts the decision
    was derived from; an access path re-derives the decision when the token
    (or the predicate — bound parameter values refine a template plan) no
    longer matches, so a cached plan can never skip rows DML made visible.
    ``pruning`` records the global toggle state at derivation time: flipping
    ``zone_pruning_disabled()`` invalidates recorded decisions too, so the
    reference path is reachable even through session-cached plans.
    """

    table: str
    predicate: Optional[Predicate]
    token: Tuple[int, ...]
    partitions: Tuple[PartitionScan, ...]
    pruning: bool = True

    @property
    def scanned(self) -> int:
        return sum(1 for partition in self.partitions if partition.scan)

    @property
    def skipped(self) -> int:
        return sum(1 for partition in self.partitions if not partition.scan)

    def scan_of(self, partition: str) -> bool:
        for entry in self.partitions:
            if entry.partition == partition:
                return entry.scan
        return True

    def matches(self, predicate: Optional[Predicate], token: Tuple[int, ...]) -> bool:
        """Whether this decision still governs *predicate* under *token*."""
        if self.pruning != zone_pruning_enabled():
            return False
        if self.token != token:
            return False
        if self.predicate is predicate:
            return True
        try:
            return self.predicate == predicate
        except Exception:  # pragma: no cover - exotic __eq__ definitions
            return False

    def describe(self) -> str:
        text = f"{self.scanned} scanned, {self.skipped} skipped"
        skipped = [entry.partition for entry in self.partitions if not entry.scan]
        if skipped:
            text += f" ({', '.join(skipped)})"
        return text
