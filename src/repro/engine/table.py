"""StoredTable: a named table living in exactly one store.

:class:`StoredTable` is a thin wrapper around either backend
(:class:`~repro.engine.row_store.RowStoreTable` or
:class:`~repro.engine.column_store.ColumnStoreTable`) that adds the table
name, store-conversion (the physical operation the advisor's recommendations
trigger) and convenience accessors.  The executor and the partitioning layer
work against this wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.batch import BatchColumn, ColumnBatch
from repro.engine.column_store import ColumnStoreTable
from repro.engine.row_store import RowStoreTable
from repro.engine.schema import TableSchema
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.query.predicates import Predicate

Backend = Union[RowStoreTable, ColumnStoreTable]


def create_backend(schema: TableSchema, store: Store) -> Backend:
    """Create an empty backend of the requested store for *schema*."""
    if store is Store.ROW:
        return RowStoreTable(schema)
    return ColumnStoreTable(schema)


class StoredTable:
    """A table stored in exactly one of the two stores."""

    def __init__(self, schema: TableSchema, store: Store = Store.ROW,
                 backend: Optional[Backend] = None) -> None:
        self.schema = schema
        self._backend: Backend = backend if backend is not None else create_backend(schema, store)

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def store(self) -> Store:
        return self._backend.store

    @property
    def backend(self) -> Backend:
        return self._backend

    @property
    def num_rows(self) -> int:
        return self._backend.num_rows

    @property
    def row_width_bytes(self) -> int:
        return self.schema.row_width_bytes

    @property
    def memory_bytes(self) -> float:
        return self._backend.memory_bytes

    def compression_rate(self, column: Optional[str] = None) -> float:
        return self._backend.compression_rate(column)

    def has_index(self, column: str) -> bool:
        return self._backend.has_index(column)

    # -- store conversion ---------------------------------------------------------

    def convert_to(self, store: Store,
                   accountant: Optional[CostAccountant] = None) -> "StoredTable":
        """Move the table to *store* (no-op if it is already there).

        The conversion reads every cell of the source layout and writes it to
        the target layout, which the timing model charges as layout-conversion
        work.  The conversion happens in place: ``self`` ends up backed by the
        new store and is also returned for convenience.
        """
        if store is self.store:
            return self
        num_rows = self._backend.num_rows
        if accountant is not None:
            accountant.charge_layout_conversion(num_rows * self.schema.num_columns)
        new_backend = create_backend(self.schema, store)
        # The conversion moves data columnarly: the source serves each column
        # as one array and the target adopts them without re-validating every
        # row (the values were validated when they entered the source store).
        columns = {
            name: self._backend.column_values(name)
            for name in self.schema.column_names
        }
        new_backend.bulk_load_columns(columns, num_rows)
        self._backend = new_backend
        return self

    # -- index management -----------------------------------------------------------

    def create_hash_index(self, column: str) -> None:
        if isinstance(self._backend, RowStoreTable):
            self._backend.create_hash_index(column)

    def create_sorted_index(self, column: str) -> None:
        if isinstance(self._backend, RowStoreTable):
            self._backend.create_sorted_index(column)

    # -- data access (delegation) ------------------------------------------------------

    def insert_rows(self, rows: Sequence[Mapping[str, Any]],
                    accountant: Optional[CostAccountant] = None) -> List[int]:
        return self._backend.insert_rows(rows, accountant)

    def bulk_load(self, rows: Sequence[Mapping[str, Any]]) -> None:
        self._backend.bulk_load(list(rows))

    def update_rows(self, positions: Sequence[int], assignments: Mapping[str, Any],
                    accountant: Optional[CostAccountant] = None) -> int:
        return self._backend.update_rows(positions, assignments, accountant)

    def delete_rows(self, positions: Sequence[int],
                    accountant: Optional[CostAccountant] = None) -> int:
        return self._backend.delete_rows(positions, accountant)

    def filter_positions(self, predicate: Optional[Predicate],
                         accountant: Optional[CostAccountant] = None) -> Optional[np.ndarray]:
        return self._backend.filter_positions(predicate, accountant)

    def charge_filter_scan(self, predicate: Optional[Predicate],
                           accountant: Optional[CostAccountant] = None) -> None:
        """Replay :meth:`filter_positions` charges for a zone-pruned DML scan."""
        if predicate is not None:
            self._backend.charge_filter_scan(predicate, accountant)

    def charge_column_scan(self, column: str,
                           accountant: Optional[CostAccountant] = None) -> None:
        """Replay :meth:`column_array`'s full-read charges without reading."""
        if accountant is None:
            return
        backend = self._backend
        if isinstance(backend, ColumnStoreTable):
            accountant.charge_sequential_read(
                "column_scan", backend.column_code_bytes(column)
            )
            accountant.charge_dict_decodes(backend.num_rows)
        else:
            accountant.charge_sequential_read(
                "row_scan", backend.num_rows * backend.row_width_bytes
            )

    def fetch_rows(self, positions: Optional[Sequence[int]],
                   columns: Optional[Sequence[str]] = None,
                   accountant: Optional[CostAccountant] = None) -> List[Dict[str, Any]]:
        return self._backend.fetch_rows(positions, columns, accountant)

    def column_values(self, column: str, positions: Optional[Sequence[int]] = None,
                      accountant: Optional[CostAccountant] = None) -> List[Any]:
        return self._backend.column_values(column, positions, accountant)

    def column_array(self, column: str, positions: Optional[Sequence[int]] = None,
                     accountant: Optional[CostAccountant] = None) -> np.ndarray:
        return self._backend.column_array(column, positions, accountant)

    def column_batched(self, column: str, positions: Optional[Sequence[int]] = None,
                       accountant: Optional[CostAccountant] = None) -> "BatchColumn":
        """The column in its cheapest batch representation (same cost charges).

        The column store hands out its ``(codes, dictionary)`` pair without
        decoding (late materialisation); the row store serves its cached
        value array.
        """
        backend = self._backend
        if isinstance(backend, ColumnStoreTable):
            return backend.column_encoded(column, positions, accountant)
        return backend.column_array(column, positions, accountant)

    def scan_columns(self, columns: Sequence[str],
                     positions: Optional[Sequence[int]] = None,
                     accountant: Optional[CostAccountant] = None) -> Dict[str, List[Any]]:
        return self._backend.scan_columns(columns, positions, accountant)

    def scan_batch(self, columns: Sequence[str],
                   positions: Optional[Sequence[int]] = None,
                   accountant: Optional[CostAccountant] = None,
                   encode: Sequence[str] = ()) -> "ColumnBatch":
        if encode and isinstance(self._backend, RowStoreTable):
            # Row store: serve the listed columns interned when possible (the
            # column store is always dictionary-encoded anyway).
            return self._backend.scan_batch(columns, positions, accountant,
                                            encode=encode)
        return self._backend.scan_batch(columns, positions, accountant)

    def all_rows(self) -> List[Dict[str, Any]]:
        return self._backend.all_rows()

    # -- delta / snapshots ----------------------------------------------------------------

    @property
    def delta_rows(self) -> int:
        """Rows buffered in a column-store delta (0 for the row store)."""
        if isinstance(self._backend, ColumnStoreTable):
            return self._backend.delta_rows
        return 0

    def merge_delta(self) -> int:
        """Merge a column-store delta into main (no-op for the row store)."""
        if isinstance(self._backend, ColumnStoreTable):
            return self._backend.merge_delta()
        return 0

    def snapshot(self):
        """A consistent read view of the table as of now (snapshot isolation)."""
        return self._backend.snapshot()

    # -- integrity -----------------------------------------------------------------------

    def integrity_units(self) -> List[Tuple[Optional[str], Backend]]:
        """Partition units for the integrity scrubber: ``(label, backend)``.

        An unpartitioned table is a single unlabelled unit; the scrubber
        skips row-store backends (no checksums) by the absence of an
        ``integrity`` attribute.
        """
        return [(None, self._backend)]

    # -- zone maps -----------------------------------------------------------------------

    @property
    def zone_epoch(self) -> int:
        """The backend's zone epoch (bumped by every mutation)."""
        return self._backend.zone_epoch

    def column_zone(self, column: str):
        """The backend's zone synopsis of *column* (``None`` = no synopsis)."""
        return self._backend.column_zone(column)

    # -- statistics helpers --------------------------------------------------------------

    def column_distinct_count(self, column: str) -> int:
        return self._backend.column_distinct_count(column)

    def column_min_max(self, column: str) -> Tuple[Any, Any]:
        return self._backend.column_min_max(column)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoredTable(name={self.name!r}, store={self.store.value}, "
            f"rows={self.num_rows})"
        )
