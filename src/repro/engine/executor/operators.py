"""Query operators: aggregation, selection and the DML operations.

Operators work against :class:`~repro.engine.executor.access.AccessPath`
objects, so they are oblivious to stores and partitioning; all store-specific
cost behaviour is encapsulated in the access paths, the join helper and the
timing model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.engine.batch import BatchColumn, ColumnBatch, take_column
from repro.engine.deadline import deadline_check
from repro.engine.executor.access import AccessPath
from repro.engine.executor.agg_pushdown import (
    TIER_PARTITION_PARTIAL,
    TIER_ZERO_SCAN,
    aggregate_pushdown_enabled,
)
from repro.engine.executor.aggregates import (
    GroupedAggregation,
    merge_partition_partials,
    partition_partial_rows,
)
from repro.engine.executor.join import join_dimension
from repro.engine.shard import (
    shard_execution_enabled,
    try_sharded_aggregation,
    try_sharded_select,
)
from repro.engine.timing import CostAccountant
from repro.errors import QueryError
from repro.query.ast import (
    AggregateFunction,
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    SelectQuery,
    UpdateQuery,
    split_qualified,
)


def execute_aggregation(
    query: AggregationQuery,
    paths: Mapping[str, AccessPath],
    accountant: CostAccountant,
) -> List[Dict[str, Any]]:
    """Execute an aggregation query (optionally grouped and joined).

    The base path's recorded :class:`AggregateStrategy` (re-derived when its
    zone-epoch token went stale) picks the execution tier: zero-scan answers
    come straight from the strategy's synopsis-derived row, partition-partial
    aggregations merge per-partition states, and everything else takes the
    generic collect-then-reduce path (whose aggregation kernels still exploit
    dictionary codes — the code-domain tier).  Every tier charges the
    accountant identically.
    """
    base_path = paths[query.table]

    if query.predicate is not None:
        unknown = {
            name for name in query.predicate.columns()
            if split_qualified(name)[0] not in (None, query.table)
        }
        if unknown:
            raise QueryError(
                "predicates on joined tables are not supported; qualify only "
                f"base-table columns (got {sorted(unknown)})"
            )
    base_columns, encode_columns = aggregation_scan_columns(
        query, base_path.table.schema
    )

    strategy = base_path.aggregate_decision_for(query)
    accountant.record_aggregate_strategy(query.table, strategy.describe())

    if aggregate_pushdown_enabled():
        if strategy.tier == TIER_ZERO_SCAN and strategy.answer is not None:
            # The answer was precomputed from the zone synopses; the collect
            # only replays the reference charges (nothing decodes — encoded
            # columns stay untouched) and the per-row aggregate-update
            # charges are identical because the batch holds exactly the rows
            # the verdicts proved.
            batch = base_path.collect_batch(
                base_columns, query.predicate, accountant,
                encode_columns=encode_columns,
            )
            accountant.charge_aggregate_updates(
                batch.num_rows * len(query.aggregates)
            )
            return [dict(strategy.answer)]
        if strategy.tier == TIER_PARTITION_PARTIAL:
            return _execute_partition_partial(
                query, base_path, base_columns, encode_columns, accountant
            )

    if shard_execution_enabled() and not query.joins:
        # Shard-parallel scatter/gather: workers compute partial states over
        # shared-memory code shards, the parent merges and then replays the
        # serial collect-then-reduce charges bit-identically.  ``None``
        # means ineligible-or-failed — nothing was charged; fall through.
        sharded = try_sharded_aggregation(base_path, query, base_columns, accountant)
        if sharded is not None:
            return sharded

    deadline_check()
    batch = base_path.collect_batch(
        base_columns, query.predicate, accountant, encode_columns=encode_columns
    )
    num_rows = batch.num_rows

    # Resolve joins: fetch the referenced dimension attributes aligned with the
    # base rows and drop base rows without a join partner.  Everything stays
    # columnar — filtering by the match mask is one fancy-indexing pass, over
    # the codes alone for dictionary-encoded columns.
    joined_columns: Dict[str, BatchColumn] = {}
    for join in query.joins:
        if join.left_column not in batch:
            raise QueryError(
                f"join key {join.left_column!r} is not a column of {query.table!r}"
            )
        dimension_path = paths[join.table]
        needed = sorted(
            name for name in _columns_owned_by(query, join.table)
            if name != join.right_column
        ) or [join.right_column]
        result = join_dimension(
            base_key_values=batch.raw(join.left_column),
            join=join,
            dimension_path=dimension_path,
            needed_columns=needed,
            base_store=base_path.primary_store,
            accountant=accountant,
        )
        if not bool(result.match_mask.all()):
            keep = result.match_mask
            batch = batch.take(keep)
            joined_columns = {
                name: take_column(values, keep)
                for name, values in joined_columns.items()
            }
            result.columns = {
                name: take_column(values, keep)
                for name, values in result.columns.items()
            }
            num_rows = batch.num_rows
        joined_columns.update(result.columns)

    # Group keys keep their carried representation (encoded columns group on
    # codes); aggregate inputs reduce inside the aggregation, in the
    # dictionary domain where they can.
    available = batch.raw_columns()
    available.update(joined_columns)

    aggregate_inputs, group_key_columns = _assemble_inputs(query, available)

    # Cost of the aggregation itself.
    accountant.charge_aggregate_updates(num_rows * len(query.aggregates))
    if query.group_by:
        accountant.charge_group_by_updates(num_rows)

    aggregation = GroupedAggregation(
        aggregates=query.aggregates,
        group_by_names=list(query.group_by),
    )
    return aggregation.run(aggregate_inputs, group_key_columns, num_rows)


def aggregation_scan_columns(
    query: AggregationQuery, base_schema
) -> "tuple[List[str], List[str]]":
    """Base-table columns an aggregation reads, and which to serve encoded.

    Shared by :func:`execute_aggregation` and the materialized-view refresh so
    both collect exactly the same columns in the same representation.  The
    encode set is the group-by keys: the aggregation groups on dictionary
    codes, so the access path serves them interned/encoded where the store
    can.
    """
    base_columns: List[str] = []
    for name in sorted(query.columns_of(query.table)):
        if name == "*":
            continue
        if not base_schema.has_column(name):
            raise QueryError(
                f"aggregation query references unknown column {name!r} of table "
                f"{query.table!r}"
            )
        base_columns.append(name)
    if not base_columns:
        # COUNT(*)-style query: read the narrowest column to obtain the row count.
        narrowest = min(base_schema.columns, key=lambda column: column.width_bytes)
        base_columns = [narrowest.name]

    encode_columns: List[str] = []
    for name in query.group_by:
        owner, column = split_qualified(name)
        if (owner is None or owner == query.table) and column in base_columns:
            encode_columns.append(column)
    return base_columns, encode_columns


def _assemble_inputs(
    query: AggregationQuery, available: Mapping[str, BatchColumn]
) -> "tuple[List[Optional[Sequence[Any]]], List[Sequence[Any]]]":
    """Aggregate inputs (``None`` for ``COUNT(*)``) and group key columns."""
    aggregate_inputs: List[Optional[Sequence[Any]]] = []
    for spec in query.aggregates:
        if spec.function is AggregateFunction.COUNT and spec.column == "*":
            aggregate_inputs.append(None)
            continue
        aggregate_inputs.append(_resolve_column(spec.column, query, available))
    group_key_columns = [
        _resolve_column(name, query, available) for name in query.group_by
    ]
    return aggregate_inputs, group_key_columns


def _execute_partition_partial(
    query: AggregationQuery,
    base_path: AccessPath,
    base_columns: Sequence[str],
    encode_columns: Sequence[str],
    accountant: CostAccountant,
) -> List[Dict[str, Any]]:
    """Aggregate each partition independently and merge the partial states.

    Zone-pruned partitions contribute nothing; batches are never
    concatenated, so each partition reduces in its own representation (the
    main portion's dictionary codes stay encoded next to a populated hot
    partition).  Charges are identical to the concatenate-then-reduce
    reference: the per-partition collects charge exactly what the single
    concatenated collect would, and the aggregation charges are computed
    over the summed row count.
    """
    group_names = list(query.group_by)
    batches = base_path.collect_partition_batches(
        base_columns, query.predicate, accountant, encode_columns=encode_columns
    )
    num_rows = sum(batch.num_rows for batch in batches)
    accountant.charge_aggregate_updates(num_rows * len(query.aggregates))
    if group_names:
        accountant.charge_group_by_updates(num_rows)

    aggregation = GroupedAggregation(
        aggregates=query.aggregates, group_by_names=group_names
    )
    try:
        per_partition: List[List[Dict[str, Any]]] = []
        for batch in batches:
            if batch.num_rows == 0:
                continue
            inputs, keys = _assemble_inputs(query, batch.raw_columns())
            per_partition.append(
                partition_partial_rows(
                    query.aggregates, group_names, inputs, keys, batch.num_rows
                )
            )
        return merge_partition_partials(query.aggregates, group_names, per_partition)
    except TypeError:
        # Unorderable partial merge (exotic mixed types across partitions):
        # aggregate the concatenated batches exactly like the reference path.
        # All charges were made above — none are repeated here.
        batch = ColumnBatch.concat(batches)
        inputs, keys = _assemble_inputs(query, batch.raw_columns())
        return aggregation.run(inputs, keys, batch.num_rows)


def _columns_owned_by(query: AggregationQuery, table: str) -> List[str]:
    """Columns of *table* (a joined table) referenced by the query."""
    columns = set()
    for spec in query.aggregates:
        owner, column = split_qualified(spec.column)
        if owner == table:
            columns.add(column)
    for name in query.group_by:
        owner, column = split_qualified(name)
        if owner == table:
            columns.add(column)
    return sorted(columns)


def _resolve_column(
    name: str, query: AggregationQuery, available: Mapping[str, Sequence[Any]]
) -> Sequence[Any]:
    """Look up a (possibly qualified) column among the collected arrays."""
    owner, column = split_qualified(name)
    if owner is None or owner == query.table:
        if column in available:
            return available[column]
    if name in available:
        return available[name]
    raise QueryError(f"column {name!r} is not available to the aggregation")


def execute_select(
    query: SelectQuery, path: AccessPath, accountant: CostAccountant
) -> List[Dict[str, Any]]:
    """Execute a point/range query."""
    schema = path.table.schema
    for name in query.columns:
        if not schema.has_column(name):
            raise QueryError(
                f"select query references unknown column {name!r} of {query.table!r}"
            )
    if shard_execution_enabled() and query.predicate is not None:
        # Shard-parallel filtered scan; the parent fetches the gathered
        # positions itself so materialisation charges match serial exactly.
        sharded = try_sharded_select(path, query, accountant)
        if sharded is not None:
            return sharded
    deadline_check()
    return path.select_rows(list(query.columns), query.predicate, query.limit, accountant)


def execute_insert(
    query: InsertQuery, path: AccessPath, accountant: CostAccountant
) -> int:
    """Execute an insert query, returning the number of inserted rows."""
    return path.insert(list(query.rows), accountant)


def execute_update(
    query: UpdateQuery, path: AccessPath, accountant: CostAccountant
) -> int:
    """Execute an update query, returning the number of affected rows."""
    schema = path.table.schema
    for name in query.assignments:
        if not schema.has_column(name):
            raise QueryError(
                f"update query references unknown column {name!r} of {query.table!r}"
            )
    return path.update(dict(query.assignments), query.predicate, accountant)


def execute_delete(
    query: DeleteQuery, path: AccessPath, accountant: CostAccountant
) -> int:
    """Execute a delete query, returning the number of removed rows."""
    return path.delete(query.predicate, accountant)
