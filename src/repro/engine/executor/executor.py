"""Query executor: dispatches queries and assembles results with their costs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.executor.operators import (
    execute_aggregation,
    execute_delete,
    execute_insert,
    execute_select,
    execute_update,
)
from repro.engine.executor.rewrite import access_path_for
from repro.engine.deadline import deadline_check
from repro.engine.integrity import integrity_counters
from repro.engine.timing import CostAccountant, CostBreakdown, DeviceModel
from repro.errors import QueryError
from repro.query.ast import (
    AggregationQuery,
    DeleteQuery,
    InsertQuery,
    Query,
    SelectQuery,
    UpdateQuery,
)


@dataclass
class QueryResult:
    """Result of executing one query."""

    rows: List[Dict[str, Any]] = field(default_factory=list)
    affected_rows: int = 0
    cost: CostBreakdown = field(default_factory=CostBreakdown)
    #: Per-table ``(partitions scanned, partitions skipped)`` — the access
    #: paths' zone-pruning telemetry, reported by ``EXPLAIN ANALYZE``.
    scan_stats: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Per-table aggregate-pushdown strategy execution consumed — pinned by
    #: ``EXPLAIN ANALYZE`` against the plan's recorded strategy.
    agg_strategies: Dict[str, str] = field(default_factory=dict)
    #: Per-table ``(main rows, delta rows)`` scanned — the delta/main split's
    #: telemetry, reported by ``EXPLAIN ANALYZE`` when a scan read a delta.
    delta_scans: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Per-table ``(fan_out, ((rows scanned, rows matched), ...))`` of a
    #: shard-parallel execution — empty when the query ran serially.
    shard_stats: Dict[str, Tuple[int, Tuple[Tuple[int, int], ...]]] = field(
        default_factory=dict
    )
    #: Materialized-view serves: view name -> how it was served ("served", or
    #: "served after <kind> refresh" when the view was stale).  Empty when the
    #: query ran against base tables; reported by ``EXPLAIN ANALYZE``.
    view_hits: Dict[str, str] = field(default_factory=dict)
    #: Per-table degradation-ladder walks: table -> a description of the
    #: rungs walked (e.g. "shard-parallel -> retry x1 -> serial (...)").
    #: Empty when every tier executed as planned; a degraded query still
    #: charges exactly the serial reference — this keeps the fallback
    #: visible in ``EXPLAIN ANALYZE``.
    degradations: Dict[str, str] = field(default_factory=dict)
    #: Integrity-counter movements this query caused (checksum
    #: verifications, detections, quarantines) — empty for the common
    #: all-clean, already-verified case; reported by ``EXPLAIN ANALYZE``.
    #: Verification charges no simulated cost, so this is telemetry only.
    integrity: Dict[str, int] = field(default_factory=dict)

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime of the query in milliseconds."""
        return self.cost.total_ms

    def __len__(self) -> int:
        return len(self.rows)


class QueryExecutor:
    """Executes queries against the table objects of a database.

    The executor asks *table_provider* (the :class:`HybridDatabase`) for the
    physical table object of each referenced table and wraps it in the
    appropriate access path, so partitioned tables are handled transparently.
    """

    def __init__(self, table_provider, device: Optional[DeviceModel] = None) -> None:
        self._tables = table_provider
        self.device = device or DeviceModel()

    def resolve_paths(self, query: Query) -> Dict[str, "AccessPath"]:
        """Resolve the access path of every table the query references.

        This is the physical half of planning: the returned paths capture the
        store and partitioning each table is currently read through, and —
        for a filtered read — the zone-map pruning decision of the base
        table's scan (:meth:`AccessPath.plan_scan`), so that EXPLAIN and
        execution consume one and the same decision.  The session planner
        calls it once per (query, layout) and caches the result inside a
        :class:`~repro.api.plan.PhysicalPlan`; the legacy :meth:`execute`
        entry point re-resolves per query.
        """
        paths = {
            name: access_path_for(self._tables.table_object(name))
            for name in query.tables
        }
        if isinstance(query, (SelectQuery, AggregationQuery,
                              UpdateQuery, DeleteQuery)):
            # DML predicate scans reuse the read path's decision machinery:
            # a provably-empty UPDATE/DELETE scan is skipped (with its
            # charges replayed, so write-path accounting stays identical).
            predicate = query.predicate
            if predicate is not None:
                paths[query.table].plan_scan(predicate)
        if isinstance(query, AggregationQuery):
            paths[query.table].plan_aggregate(query)
        if isinstance(query, (SelectQuery, AggregationQuery)):
            # Shard planning runs last: the aggregation verdict above feeds
            # the shard eligibility test (zero-scan answers never shard).
            paths[query.table].plan_shards(query)
        return paths

    def execute(self, query: Query) -> QueryResult:
        return self.execute_with_paths(query, self.resolve_paths(query))

    def execute_with_paths(
        self, query: Query, paths: Dict[str, "AccessPath"]
    ) -> QueryResult:
        """Execute *query* over already-resolved access *paths*.

        The cost charges are exactly those of :meth:`execute` — re-using a
        plan's paths never changes what a query costs.
        """
        deadline_check()
        accountant = CostAccountant(self.device)
        accountant.charge_query_overhead()
        # Integrity counters are process-wide; the per-query movement (for
        # EXPLAIN ANALYZE) is the delta around this execution.
        integrity_base = integrity_counters().snapshot()

        if isinstance(query, AggregationQuery):
            rows = execute_aggregation(query, paths, accountant)
            return QueryResult(rows=rows, affected_rows=0, cost=accountant.breakdown,
                               scan_stats=accountant.scan_stats,
                               agg_strategies=accountant.aggregate_strategies,
                               delta_scans=accountant.delta_scans,
                               shard_stats=accountant.shard_stats,
                               degradations=accountant.degradations,
                               integrity=integrity_counters().delta(integrity_base))
        path = paths[query.table]
        if isinstance(query, SelectQuery):
            rows = execute_select(query, path, accountant)
            return QueryResult(rows=rows, affected_rows=0, cost=accountant.breakdown,
                               scan_stats=accountant.scan_stats,
                               delta_scans=accountant.delta_scans,
                               shard_stats=accountant.shard_stats,
                               degradations=accountant.degradations,
                               integrity=integrity_counters().delta(integrity_base))
        if isinstance(query, InsertQuery):
            affected = execute_insert(query, path, accountant)
        elif isinstance(query, UpdateQuery):
            affected = execute_update(query, path, accountant)
        elif isinstance(query, DeleteQuery):
            affected = execute_delete(query, path, accountant)
        else:  # pragma: no cover - defensive
            raise QueryError(f"unsupported query type: {type(query).__name__}")
        return QueryResult(rows=[], affected_rows=affected, cost=accountant.breakdown,
                           scan_stats=accountant.scan_stats,
                           delta_scans=accountant.delta_scans,
                           integrity=integrity_counters().delta(integrity_base))
