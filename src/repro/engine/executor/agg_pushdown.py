"""Aggregate pushdown: execute aggregation as deep in the storage stack as
each query allows.

The executor supports four *tiers*, chosen at plan time from the query shape
and the zone-map synopses, recorded as an :class:`AggregateStrategy` in the
physical plan, and consumed by execution (re-derived when the zone-epoch
token went stale, exactly like a :class:`~repro.engine.zonemap.ScanDecision`):

``zero-scan``
    Ungrouped ``COUNT(*)``/``COUNT(col)``/``MIN``/``MAX`` whose predicate is
    absent — or provably all-true / all-false per partition
    (:func:`~repro.engine.zonemap.zone_must_match` /
    :func:`~repro.engine.zonemap.zone_can_match`) — are answered from the
    partitions' zone synopses and row/null counts.  The answer is computed
    at derivation time and embedded in the strategy; execution decodes
    nothing and reduces nothing.

``partition-partial``
    Aggregations over a partitioned table compute one mergeable partial
    state per partition and combine them associatively — zone-pruned
    partitions contribute nothing, and the partitions' batches are never
    concatenated (so a hot row-store partition no longer forces the main
    portion's dictionary codes to decode).  Requires NaN-free group keys and
    MIN/MAX inputs (proved by the zones), because the scalar min/max fold
    and per-NaN-object grouping are order-dependent.

``code-domain``
    Unpartitioned column-store aggregations run on dictionary codes: the
    group key's codes serve directly as dense group ids (one ``bincount``
    per partition, one key decode per *group*), and ``SUM``/``AVG`` over
    encoded numeric columns reduce as ``bincount(codes) · decoded(dict)`` —
    O(|dictionary|) decodes instead of O(rows).  (The same kernels also run
    inside each partition of the ``partition-partial`` tier.)

``operator``
    The generic reference path: joins, row-store bases, undecidable
    predicates, and everything under ``aggregate_pushdown_disabled()``.

Pushdown is a **wall-clock** optimisation only: every tier charges the
:class:`~repro.engine.timing.CostAccountant` bit-identically to the
reference path (the zero-scan tier still *charges* the scan it skips), and
``aggregate_pushdown_disabled()`` keeps the decode-then-reduce pipeline
reachable as the differential baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.engine.types import Store
from repro.engine.zonemap import ColumnZone, zone_can_match, zone_must_match
from repro.query.ast import AggregateFunction, AggregationQuery, split_qualified

__all__ = [
    "AggregateStrategy",
    "AggregateUnit",
    "TIER_CODE_DOMAIN",
    "TIER_OPERATOR",
    "TIER_PARTITION_PARTIAL",
    "TIER_ZERO_SCAN",
    "aggregate_pushdown_disabled",
    "aggregate_pushdown_enabled",
    "derive_aggregate_strategy",
]

TIER_ZERO_SCAN = "zero-scan"
TIER_PARTITION_PARTIAL = "partition-partial"
TIER_CODE_DOMAIN = "code-domain"
TIER_OPERATOR = "operator"

_PUSHDOWN_ENABLED = True


def aggregate_pushdown_enabled() -> bool:
    """Whether aggregation may execute below the generic operator."""
    return _PUSHDOWN_ENABLED


@contextmanager
def aggregate_pushdown_disabled() -> Iterator[None]:
    """Force the decode-then-reduce reference pipeline everywhere.

    The differential fuzzer runs every aggregation under this toggle too and
    pins results *and* :class:`~repro.engine.timing.CostBreakdown` charges
    identical to the pushdown path.  Recorded strategies carry the toggle
    state they were derived under, so session-cached plans re-derive on a
    flip and the reference stays reachable through them.
    """
    global _PUSHDOWN_ENABLED
    previous = _PUSHDOWN_ENABLED
    _PUSHDOWN_ENABLED = False
    try:
        yield
    finally:
        _PUSHDOWN_ENABLED = previous


#: Zero-scan verdicts per prunable unit.
_VERDICT_ALL = "all"      # predicate provably matches every row
_VERDICT_NONE = "none"    # predicate provably matches no row
_VERDICT_EMPTY = "empty"  # partition holds no rows

#: Functions an aggregation query may use (all of them merge associatively).
_ZERO_SCAN_FUNCTIONS = frozenset(
    {AggregateFunction.COUNT, AggregateFunction.MIN, AggregateFunction.MAX}
)


class AggregateUnit:
    """One prunable unit of a table's storage, as seen by the derivation.

    ``zone(column)`` returns the unit's :class:`ColumnZone` for a base-table
    column (``None`` when the unit has no synopsis for it) — for a
    vertically split main portion the zone comes from the part that stores
    the column.
    """

    __slots__ = ("label", "num_rows", "_zone_of")

    def __init__(self, label: str, num_rows: int,
                 zone_of: Callable[[str], Optional[ColumnZone]]) -> None:
        self.label = label
        self.num_rows = num_rows
        self._zone_of = zone_of

    def zone(self, column: str) -> Optional[ColumnZone]:
        return self._zone_of(column)


@dataclass(frozen=True)
class AggregateStrategy:
    """The pushdown decision of one table's aggregation, recorded in plans.

    Like a :class:`~repro.engine.zonemap.ScanDecision`, the strategy carries
    the zone-epoch ``token`` it was derived under and the toggle state; an
    access path re-derives it when either no longer matches (DML since
    planning, a different bound query, or a toggle flip), so a cached plan
    can never serve a stale zero-scan answer.
    """

    table: str
    tier: str
    reason: str
    token: Tuple[int, ...]
    pushdown: bool
    query: Optional[AggregationQuery] = None
    #: Zero-scan only: per-unit ``(label, verdict)`` pairs.
    partitions: Tuple[Tuple[str, str], ...] = ()
    #: Zero-scan only: the precomputed ``(output_name, value)`` result row.
    answer: Optional[Tuple[Tuple[str, Any], ...]] = None

    def matches(self, query: AggregationQuery, token: Tuple[int, ...]) -> bool:
        """Whether this strategy still governs *query* under *token*."""
        if self.pushdown != aggregate_pushdown_enabled():
            return False
        if self.token != token:
            return False
        if self.query is query:
            return True
        try:
            return self.query == query
        except Exception:  # pragma: no cover - exotic __eq__ definitions
            return False

    def describe(self) -> str:
        if self.reason:
            return f"{self.tier} ({self.reason})"
        return self.tier


def _base_column(query: AggregationQuery, name: str) -> Optional[str]:
    """The unqualified base-table column of *name*, or ``None`` if foreign."""
    owner, column = split_qualified(name)
    if owner in (None, query.table):
        return column
    return None


def derive_aggregate_strategy(path, query: AggregationQuery) -> AggregateStrategy:
    """Derive the pushdown strategy of *query* over *path* from the zones."""
    token = path._zone_token()
    pushdown = aggregate_pushdown_enabled()

    def operator(reason: str) -> AggregateStrategy:
        return AggregateStrategy(
            table=query.table, tier=TIER_OPERATOR, reason=reason,
            token=token, pushdown=pushdown, query=query,
        )

    if not pushdown:
        return operator("pushdown disabled")
    if query.joins:
        return operator("join")

    if not query.group_by:
        zero_scan = _try_zero_scan(path, query, token)
        if zero_scan is not None:
            return zero_scan

    if getattr(path, "supports_partition_partial", False):
        safe, reason = _partial_merge_safe(path, query)
        if safe:
            units = path.aggregate_units()
            return AggregateStrategy(
                table=query.table, tier=TIER_PARTITION_PARTIAL,
                reason=f"{len(units)} partition(s) merge partial states",
                token=token, pushdown=pushdown, query=query,
            )
        return operator(reason)

    if path.primary_store is Store.COLUMN:
        return AggregateStrategy(
            table=query.table, tier=TIER_CODE_DOMAIN,
            reason="dictionary codes as group ids",
            token=token, pushdown=pushdown, query=query,
        )
    return operator("row-store scan")


def _try_zero_scan(
    path, query: AggregationQuery, token: Tuple[int, ...]
) -> Optional[AggregateStrategy]:
    """A zero-scan strategy with its precomputed answer, or ``None``."""
    columns: List[Optional[str]] = []
    for spec in query.aggregates:
        if spec.function is AggregateFunction.COUNT and spec.column == "*":
            columns.append(None)
            continue
        if spec.function not in _ZERO_SCAN_FUNCTIONS:
            return None
        column = _base_column(query, spec.column)
        if column is None:
            return None
        columns.append(column)

    units = path.aggregate_units()
    predicate = query.predicate
    verdicts: List[Tuple[str, str]] = []
    contributing: List[AggregateUnit] = []
    for unit in units:
        if unit.num_rows == 0:
            verdicts.append((unit.label, _VERDICT_EMPTY))
            continue
        if predicate is None:
            verdict = _VERDICT_ALL
        else:
            zones = {}
            for name in predicate.columns():
                _, column = split_qualified(name)
                zone = unit.zone(column)
                if zone is not None:
                    zones[name] = zone
            if not zone_can_match(predicate, zones, unit.num_rows):
                verdict = _VERDICT_NONE
            elif zone_must_match(predicate, zones, unit.num_rows):
                verdict = _VERDICT_ALL
            else:
                return None  # undecidable from the synopses: must scan
        verdicts.append((unit.label, verdict))
        if verdict == _VERDICT_ALL:
            contributing.append(unit)

    total_rows = sum(unit.num_rows for unit in contributing)
    answer: List[Tuple[str, Any]] = []
    try:
        for spec, column in zip(query.aggregates, columns):
            if column is None:
                answer.append((spec.output_name, total_rows))
                continue
            zones = []
            for unit in contributing:
                zone = unit.zone(column)
                if zone is None or zone.null_count is None:
                    return None
                zones.append(zone)
            if spec.function is AggregateFunction.COUNT:
                value: Any = sum(
                    unit.num_rows - zone.null_count
                    for unit, zone in zip(contributing, zones)
                )
            else:
                if any(zone.has_nan for zone in zones):
                    # The scalar min/max fold is order-dependent around NaN.
                    return None
                bounds = [
                    zone.min_value if spec.function is AggregateFunction.MIN
                    else zone.max_value
                    for zone in zones
                    if zone.has_values
                ]
                if not bounds:
                    value = None
                elif spec.function is AggregateFunction.MIN:
                    value = min(bounds)
                else:
                    value = max(bounds)
            answer.append((spec.output_name, value))
    except TypeError:
        return None  # unorderable bounds across partitions

    skipped = sum(1 for _, verdict in verdicts if verdict == _VERDICT_NONE)
    reason = f"answered from {len(verdicts)} partition synopsis(es)"
    if skipped:
        reason += f", {skipped} provably empty"
    return AggregateStrategy(
        table=query.table, tier=TIER_ZERO_SCAN, reason=reason, token=token,
        pushdown=True, query=query, partitions=tuple(verdicts),
        answer=tuple(answer),
    )


def _partial_merge_safe(path, query: AggregationQuery) -> Tuple[bool, str]:
    """Whether per-partition partial states provably merge to the reference.

    Two hazards make merging order-dependent and force the concatenate-then-
    reduce reference: NaN among the group keys (the scalar reference groups
    per NaN object) and NaN among MIN/MAX inputs (the scalar fold is
    order-dependent).  Both are proved absent from the zones; a column with
    no synopsis at all stays on the reference path.
    """
    hazard_columns: List[str] = []
    for name in query.group_by:
        column = _base_column(query, name)
        if column is None:
            return False, "foreign group key"
        hazard_columns.append(column)
    for spec in query.aggregates:
        if spec.function in (AggregateFunction.MIN, AggregateFunction.MAX):
            column = _base_column(query, spec.column)
            if column is None:
                return False, "foreign aggregate input"
            hazard_columns.append(column)
    for unit in path.aggregate_units():
        if unit.num_rows == 0:
            continue
        for column in hazard_columns:
            zone = unit.zone(column)
            if zone is None:
                return False, f"no synopsis for {column!r}"
            if zone.has_nan:
                return False, f"NaN in {column!r} (order-dependent)"
    return True, ""
