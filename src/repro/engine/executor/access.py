"""Access paths: the store-aware data-access layer of the executor.

An *access path* hides from the operators whether a table lives in the row
store, the column store, or is split across partitions.  The store-specific
behaviour that the paper's cost model captures lives here:

* the row store answers multi-column reads with a single full-width tuple
  scan,
* the column store answers them with one compressed scan per column and pays
  tuple reconstruction when materialising rows,
* partitioned tables additionally pay union/join assembly costs (see
  :mod:`repro.engine.executor.rewrite`).

Access paths are also where the plan's pruning decisions execute.
:meth:`AccessPath.plan_scan` derives a :class:`~repro.engine.zonemap
.ScanDecision` for a read predicate from the current zone maps and records
it on the path; the planner embeds the same object in the physical plan.  At
execution the path *consumes* the recorded decision instead of re-deriving
it — unless the decision's zone-epoch token went stale (DML since planning)
or a different bound predicate arrives (parameterized plans), in which case
it is re-derived so pruning can never skip rows it must not.  Every prunable
unit consulted is counted on the accountant (scanned vs. skipped), which is
what ``EXPLAIN ANALYZE`` reports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.batch import ColumnBatch
from repro.engine.executor.agg_pushdown import (
    AggregateStrategy,
    AggregateUnit,
    derive_aggregate_strategy,
)
from repro.engine.shard import ShardDecision, derive_shard_decision
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.engine.zonemap import (
    PartitionScan,
    ScanDecision,
    zone_can_match,
    zone_pruning_enabled,
)
from repro.query.ast import AggregationQuery
from repro.query.predicates import Predicate


def empty_batch(columns: Sequence[str]) -> ColumnBatch:
    """A zero-row batch that still carries the requested column set."""
    return ColumnBatch(
        {name: np.empty(0, dtype=object) for name in columns}, num_rows=0
    )


def validate_assignments(schema, assignments: Mapping[str, Any]) -> None:
    """Coerce UPDATE assignment values against *schema* (raising as the
    backends' ``update_rows`` would).

    A zone-pruned UPDATE skips ``update_rows`` entirely, but the seed path
    validates the SET values even when zero rows match — an invalid value
    must keep raising ``SchemaError`` whether or not the scan was pruned.
    """
    for name, value in assignments.items():
        schema.column(name).dtype.coerce(value)


def part_zones(part: StoredTable, predicate: Predicate) -> Dict[str, Any]:
    """The zone synopses of *part* for the columns *predicate* references."""
    zones: Dict[str, Any] = {}
    for name in predicate.columns():
        if part.schema.has_column(name):
            zone = part.column_zone(name)
            if zone is not None:
                zones[name] = zone
    return zones


class AccessPath:
    """Interface used by the operators to read and modify one table."""

    #: Human-readable description used in traces and tests.
    description: str = "access path"

    #: The most recent :class:`ScanDecision` (set by :meth:`plan_scan` or a
    #: re-derivation at execution time); ``None`` until a predicate is seen.
    scan_decision: Optional[ScanDecision] = None

    #: The most recent :class:`AggregateStrategy` (set by
    #: :meth:`plan_aggregate` or re-derived at execution time).
    aggregate_strategy: Optional[AggregateStrategy] = None

    #: The most recent :class:`~repro.engine.shard.ShardDecision` (set by
    #: :meth:`plan_shards` or re-derived at execution time).
    shard_decision: Optional["ShardDecision"] = None

    #: Whether this path can serve per-partition batches for the
    #: partition-partial aggregation tier.
    supports_partition_partial: bool = False

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    @property
    def primary_store(self) -> Store:
        """The store whose layout dominates this table's data (for joins)."""
        raise NotImplementedError

    # -- scan planning -----------------------------------------------------------

    def plan_scan(self, predicate: Optional[Predicate]) -> ScanDecision:
        """Derive (and record) the pruning decision for *predicate*.

        Called once by the planner/executor when resolving paths; execution
        re-uses the recorded decision as long as its zone-epoch token and
        predicate still match.
        """
        decision = self._derive_decision(predicate)
        self.scan_decision = decision
        return decision

    def decision_for(self, predicate: Optional[Predicate]) -> ScanDecision:
        """The valid decision for *predicate* — recorded if fresh, else re-derived."""
        decision = self.scan_decision
        if decision is not None and decision.matches(predicate, self._zone_token()):
            return decision
        return self.plan_scan(predicate)

    def _zone_token(self) -> tuple:
        raise NotImplementedError

    def _derive_decision(self, predicate: Optional[Predicate]) -> ScanDecision:
        raise NotImplementedError

    # -- aggregate pushdown planning ----------------------------------------------

    def plan_aggregate(self, query: AggregationQuery) -> AggregateStrategy:
        """Derive (and record) the aggregate-pushdown strategy for *query*.

        Called by the planner/executor when resolving paths; execution
        re-uses the recorded strategy as long as its zone-epoch token, the
        query and the pushdown toggle still match.
        """
        strategy = derive_aggregate_strategy(self, query)
        self.aggregate_strategy = strategy
        return strategy

    def aggregate_decision_for(self, query: AggregationQuery) -> AggregateStrategy:
        """The valid strategy for *query* — recorded if fresh, else re-derived."""
        strategy = self.aggregate_strategy
        if strategy is not None and strategy.matches(query, self._zone_token()):
            return strategy
        return self.plan_aggregate(query)

    def aggregate_units(self) -> List[AggregateUnit]:
        """The prunable units the aggregate derivation reasons over."""
        raise NotImplementedError

    # -- shard planning ------------------------------------------------------------

    def plan_shards(self, query) -> "ShardDecision":
        """Derive (and record) the shard fan-out decision for *query*.

        Called by the planner/executor when resolving paths; execution
        re-uses the recorded decision as long as its zone-epoch token, the
        query, the toggles and the shard configuration still match.
        """
        decision = derive_shard_decision(self, query)
        self.shard_decision = decision
        return decision

    def shard_decision_for(self, query) -> "ShardDecision":
        """The valid shard decision for *query* — recorded if fresh, else re-derived."""
        decision = self.shard_decision
        if decision is not None and decision.matches(query, self._zone_token()):
            return decision
        return self.plan_shards(query)

    # -- reads -------------------------------------------------------------------

    def collect_batch(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ) -> ColumnBatch:
        """Return a columnar batch of *columns*, filtered by *predicate*.

        This is the operators' read entry point: data stays in aligned numpy
        arrays from the storage backend to the aggregation/join operators.
        *encode_columns* lists columns the consumer prefers dictionary-
        encoded (group-by keys): stores that can serve an interned
        ``(codes, dictionary)`` pair for them do so; plain value arrays
        remain a correct fallback.  Cost charges never depend on it.
        """
        raise NotImplementedError

    def collect_columns(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> Dict[str, List[Any]]:
        """Return aligned value lists for *columns*, filtered by *predicate*.

        Scalar convenience wrapper around :meth:`collect_batch` (identical
        cost charges); kept for callers that want plain Python lists.
        """
        batch = self.collect_batch(columns, predicate, accountant)
        return {name: batch.column_list(name) for name in columns}

    def select_rows(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        limit: Optional[int],
        accountant: CostAccountant,
    ) -> List[Dict[str, Any]]:
        """Return matching rows as dicts (projected to *columns* if given)."""
        raise NotImplementedError

    def insert(self, rows: Sequence[Mapping[str, Any]], accountant: CostAccountant) -> int:
        raise NotImplementedError

    def update(
        self,
        assignments: Mapping[str, Any],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> int:
        raise NotImplementedError

    def delete(self, predicate: Optional[Predicate], accountant: CostAccountant) -> int:
        raise NotImplementedError


class SimpleAccessPath(AccessPath):
    """Access path over an unpartitioned :class:`StoredTable`.

    ``inner=True`` marks paths a :class:`~repro.engine.executor.rewrite
    .PartitionedAccessPath` builds around its own parts: the outer path owns
    pruning and partition counting for them, so inner paths do neither.
    """

    def __init__(self, table: StoredTable, inner: bool = False) -> None:
        self.table = table
        self._inner = inner
        self.scan_decision = None
        self.description = f"{table.name} ({table.store.value} store)"

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def primary_store(self) -> Store:
        return self.table.store

    # -- scan planning ------------------------------------------------------------

    def _zone_token(self) -> tuple:
        return (self.table.zone_epoch,)

    def _derive_decision(self, predicate: Optional[Predicate]) -> ScanDecision:
        scan = True
        reason = ""
        if predicate is not None and zone_pruning_enabled():
            zones = part_zones(self.table, predicate)
            if not zone_can_match(predicate, zones, self.table.num_rows):
                scan = False
                reason = "zone disjoint"
        return ScanDecision(
            table=self.table.name,
            predicate=predicate,
            token=self._zone_token(),
            partitions=(PartitionScan(self.table.name, scan, reason),),
            pruning=zone_pruning_enabled(),
        )

    def aggregate_units(self) -> List[AggregateUnit]:
        table = self.table

        def zone_of(column: str):
            if not table.schema.has_column(column):
                return None
            return table.column_zone(column)

        return [AggregateUnit(table.name, table.num_rows, zone_of)]

    def _scan_allowed(
        self, predicate: Optional[Predicate], accountant: CostAccountant
    ) -> bool:
        """Consume the scan decision; count the table's single partition."""
        if self._inner:
            return True
        if predicate is None:
            accountant.count_partition(self.table.name, scanned=True)
            return True
        scan = self.decision_for(predicate).partitions[0].scan
        accountant.count_partition(self.table.name, scanned=scan)
        return scan

    def _dml_scan_pruned(
        self, predicate: Optional[Predicate], accountant: CostAccountant
    ) -> bool:
        """Whether a DML predicate scan is provably empty and may be skipped.

        Inner paths never prune (the partitioned path owns the decision).
        The skipped scan's charges are replayed so the write-path
        :class:`~repro.engine.timing.CostBreakdown` stays bit-identical to
        the seed accounting — pruning DML is a wall-clock optimisation only.
        """
        if predicate is None or self._inner or not zone_pruning_enabled():
            return False
        if self.decision_for(predicate).partitions[0].scan:
            return False
        self.table.charge_filter_scan(predicate, accountant)
        return True

    # -- reads -------------------------------------------------------------------

    def collect_batch(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ) -> ColumnBatch:
        if not self._scan_allowed(predicate, accountant):
            return empty_batch(columns)
        positions = self.table.filter_positions(predicate, accountant)
        if self.table.store is Store.ROW:
            # One full-width pass delivers every requested column; group-by
            # keys come interned from the factorization cache when possible.
            return self.table.scan_batch(columns, positions, accountant,
                                         encode=encode_columns)
        # Column store: one compressed scan (or reconstruction) per column.
        # The batch carries the (codes, dictionary) pairs undecoded — values
        # materialise only where the query result actually needs them.
        num_rows = self.table.num_rows if positions is None else len(positions)
        return ColumnBatch(
            {
                name: self.table.column_batched(name, positions, accountant)
                for name in columns
            },
            num_rows=num_rows,
        )

    def select_rows(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        limit: Optional[int],
        accountant: CostAccountant,
    ) -> List[Dict[str, Any]]:
        if not self._scan_allowed(predicate, accountant):
            return []
        positions = self.table.filter_positions(predicate, accountant)
        if positions is not None and limit is not None:
            positions = positions[:limit]
        rows = self.table.fetch_rows(positions, columns or None, accountant)
        if positions is None and limit is not None:
            rows = rows[:limit]
        return rows

    # -- writes -------------------------------------------------------------------

    def insert(self, rows: Sequence[Mapping[str, Any]], accountant: CostAccountant) -> int:
        self.table.insert_rows(rows, accountant)
        return len(rows)

    def update(
        self,
        assignments: Mapping[str, Any],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> int:
        if self._dml_scan_pruned(predicate, accountant):
            validate_assignments(self.table.schema, assignments)
            return 0
        positions = self.table.filter_positions(predicate, accountant)
        if positions is None:
            positions = np.arange(self.table.num_rows, dtype=np.int64)
        return self.table.update_rows(positions, assignments, accountant)

    def delete(self, predicate: Optional[Predicate], accountant: CostAccountant) -> int:
        if self._dml_scan_pruned(predicate, accountant):
            return 0
        positions = self.table.filter_positions(predicate, accountant)
        if positions is None:
            positions = np.arange(self.table.num_rows, dtype=np.int64)
        return self.table.delete_rows(positions, accountant)
