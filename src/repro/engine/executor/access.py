"""Access paths: the store-aware data-access layer of the executor.

An *access path* hides from the operators whether a table lives in the row
store, the column store, or is split across partitions.  The store-specific
behaviour that the paper's cost model captures lives here:

* the row store answers multi-column reads with a single full-width tuple
  scan,
* the column store answers them with one compressed scan per column and pays
  tuple reconstruction when materialising rows,
* partitioned tables additionally pay union/join assembly costs (see
  :mod:`repro.engine.executor.rewrite`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.batch import ColumnBatch
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.query.predicates import Predicate


class AccessPath:
    """Interface used by the operators to read and modify one table."""

    #: Human-readable description used in traces and tests.
    description: str = "access path"

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    @property
    def primary_store(self) -> Store:
        """The store whose layout dominates this table's data (for joins)."""
        raise NotImplementedError

    def collect_batch(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ) -> ColumnBatch:
        """Return a columnar batch of *columns*, filtered by *predicate*.

        This is the operators' read entry point: data stays in aligned numpy
        arrays from the storage backend to the aggregation/join operators.
        *encode_columns* lists columns the consumer prefers dictionary-
        encoded (group-by keys): stores that can serve an interned
        ``(codes, dictionary)`` pair for them do so; plain value arrays
        remain a correct fallback.  Cost charges never depend on it.
        """
        raise NotImplementedError

    def collect_columns(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> Dict[str, List[Any]]:
        """Return aligned value lists for *columns*, filtered by *predicate*.

        Scalar convenience wrapper around :meth:`collect_batch` (identical
        cost charges); kept for callers that want plain Python lists.
        """
        batch = self.collect_batch(columns, predicate, accountant)
        return {name: batch.column_list(name) for name in columns}

    def select_rows(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        limit: Optional[int],
        accountant: CostAccountant,
    ) -> List[Dict[str, Any]]:
        """Return matching rows as dicts (projected to *columns* if given)."""
        raise NotImplementedError

    def insert(self, rows: Sequence[Mapping[str, Any]], accountant: CostAccountant) -> int:
        raise NotImplementedError

    def update(
        self,
        assignments: Mapping[str, Any],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> int:
        raise NotImplementedError

    def delete(self, predicate: Optional[Predicate], accountant: CostAccountant) -> int:
        raise NotImplementedError


class SimpleAccessPath(AccessPath):
    """Access path over an unpartitioned :class:`StoredTable`."""

    def __init__(self, table: StoredTable) -> None:
        self.table = table
        self.description = f"{table.name} ({table.store.value} store)"

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def primary_store(self) -> Store:
        return self.table.store

    # -- reads -------------------------------------------------------------------

    def collect_batch(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ) -> ColumnBatch:
        positions = self.table.filter_positions(predicate, accountant)
        if self.table.store is Store.ROW:
            # One full-width pass delivers every requested column; group-by
            # keys come interned from the factorization cache when possible.
            return self.table.scan_batch(columns, positions, accountant,
                                         encode=encode_columns)
        # Column store: one compressed scan (or reconstruction) per column.
        # The batch carries the (codes, dictionary) pairs undecoded — values
        # materialise only where the query result actually needs them.
        num_rows = self.table.num_rows if positions is None else len(positions)
        return ColumnBatch(
            {
                name: self.table.column_batched(name, positions, accountant)
                for name in columns
            },
            num_rows=num_rows,
        )

    def select_rows(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        limit: Optional[int],
        accountant: CostAccountant,
    ) -> List[Dict[str, Any]]:
        positions = self.table.filter_positions(predicate, accountant)
        if positions is not None and limit is not None:
            positions = positions[:limit]
        rows = self.table.fetch_rows(positions, columns or None, accountant)
        if positions is None and limit is not None:
            rows = rows[:limit]
        return rows

    # -- writes -------------------------------------------------------------------

    def insert(self, rows: Sequence[Mapping[str, Any]], accountant: CostAccountant) -> int:
        self.table.insert_rows(rows, accountant)
        return len(rows)

    def update(
        self,
        assignments: Mapping[str, Any],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> int:
        positions = self.table.filter_positions(predicate, accountant)
        if positions is None:
            positions = np.arange(self.table.num_rows, dtype=np.int64)
        return self.table.update_rows(positions, assignments, accountant)

    def delete(self, predicate: Optional[Predicate], accountant: CostAccountant) -> int:
        positions = self.table.filter_positions(predicate, accountant)
        if positions is None:
            positions = np.arange(self.table.num_rows, dtype=np.int64)
        return self.table.delete_rows(positions, accountant)
