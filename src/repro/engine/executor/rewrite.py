"""Transparent query rewriting over partitioned tables.

Users (and the workload generators) write queries against logical tables; when
the storage advisor has partitioned a table, the catalog carries a
partitioning annotation and the executor routes the query through a
:class:`PartitionedAccessPath` instead of a plain one (Section 4 of the paper,
"Store-aware Partitioning").

The access path implements the two assembly operations the paper describes:

* **union** of the hot (row-store) and historic partitions for queries that
  address all the data — charged as per-partition overhead, and
* **join** of the vertical parts when a query touches attributes from both —
  charged as a hash join over the participating rows.

Zone-map pruning happens at partition granularity: the main (historic)
portion and the hot partition are independent prunable units, each skipped
— before any code or tuple is touched — when its zone synopses prove the
read predicate cannot match (see :mod:`repro.engine.zonemap`).  The pruning
verdicts come from the plan's recorded :class:`ScanDecision` when it is
still fresh, and are re-derived otherwise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.engine.batch import ColumnBatch, evaluate_predicate_mask
from repro.engine.executor.access import (
    AccessPath,
    SimpleAccessPath,
    empty_batch,
    part_zones,
    validate_assignments,
)
from repro.engine.executor.agg_pushdown import AggregateUnit
from repro.engine.partitioning import PartitionedTable
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.engine.zonemap import (
    PartitionScan,
    ScanDecision,
    zone_can_match,
    zone_pruning_enabled,
)
from repro.query.predicates import Predicate

#: Prunable-unit labels of a partitioned table.
MAIN_PARTITION = "main"
HOT_PARTITION = "hot"


class PartitionedAccessPath(AccessPath):
    """Access path over a :class:`PartitionedTable`."""

    supports_partition_partial = True

    def __init__(self, table: PartitionedTable) -> None:
        self.table = table
        self.scan_decision = None
        self.aggregate_strategy = None
        self.description = f"{table.name} (partitioned: {table.partitioning.describe()})"

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def primary_store(self) -> Store:
        if self.table.has_vertical_split:
            return Store.COLUMN
        return self.table.main_parts[0].store

    # -- scan planning ---------------------------------------------------------------

    def _zone_token(self) -> tuple:
        return tuple(part.zone_epoch for part in self.table.all_parts)

    def _derive_decision(self, predicate: Optional[Predicate]) -> ScanDecision:
        table = self.table
        partitions: List[PartitionScan] = []
        prune = predicate is not None and zone_pruning_enabled()

        main_scan, main_reason = True, ""
        if prune and table.main_num_rows > 0:
            # With a vertical split the parts are row-aligned: each predicate
            # column's zone comes from the part that stores it, and the main
            # portion is skipped only if the combined zones prove emptiness.
            zones: Dict[str, Any] = {}
            for name in predicate.columns():
                if table.schema.has_column(name):
                    part = table.part_containing(name)
                    if part.schema.has_column(name):
                        zone = part.column_zone(name)
                        if zone is not None:
                            zones[name] = zone
            if not zone_can_match(predicate, zones, table.main_num_rows):
                main_scan, main_reason = False, "zone disjoint"
        partitions.append(PartitionScan(MAIN_PARTITION, main_scan, main_reason))

        if table.hot is not None:
            hot_scan, hot_reason = True, ""
            if prune and table.hot.num_rows > 0:
                zones = part_zones(table.hot, predicate)
                if not zone_can_match(predicate, zones, table.hot.num_rows):
                    hot_scan, hot_reason = False, "zone disjoint"
            partitions.append(PartitionScan(HOT_PARTITION, hot_scan, hot_reason))

        return ScanDecision(
            table=table.name,
            predicate=predicate,
            token=self._zone_token(),
            partitions=tuple(partitions),
            pruning=zone_pruning_enabled(),
        )

    def _count(self, accountant: CostAccountant, scanned: bool) -> None:
        accountant.count_partition(self.table.name, scanned=scanned)

    def aggregate_units(self) -> List[AggregateUnit]:
        table = self.table

        def main_zone(column: str):
            if not table.schema.has_column(column):
                return None
            part = table.part_containing(column)
            if not part.schema.has_column(column):
                return None
            return part.column_zone(column)

        units = [AggregateUnit(MAIN_PARTITION, table.main_num_rows, main_zone)]
        hot = table.hot
        if hot is not None:
            def hot_zone(column: str):
                if not hot.schema.has_column(column):
                    return None
                return hot.column_zone(column)

            units.append(AggregateUnit(HOT_PARTITION, hot.num_rows, hot_zone))
        return units

    # -- reads ---------------------------------------------------------------------

    def _collect_segments(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str],
    ) -> List[ColumnBatch]:
        """Per-partition batches of the scan (shared by concat and partial).

        Cost charges — partition counting, per-part scans and the partition
        overhead — are identical whether the caller concatenates the batches
        or aggregates them partition by partition.
        """
        decision = self.decision_for(predicate)
        segments = 0
        batches: List[ColumnBatch] = []

        if decision.scan_of(MAIN_PARTITION):
            self._count(accountant, scanned=True)
            main_batch, main_parts_touched = self._collect_from_main(
                columns, predicate, accountant, encode_columns=encode_columns
            )
            segments += main_parts_touched
            batches.append(main_batch)
        else:
            self._count(accountant, scanned=False)
            batches.append(empty_batch(columns))

        if self.table.hot is not None:
            if decision.scan_of(HOT_PARTITION):
                self._count(accountant, scanned=True)
                if self.table.hot.num_rows > 0:
                    hot_batch = SimpleAccessPath(self.table.hot, inner=True).collect_batch(
                        columns, predicate, accountant
                    )
                    segments += 1
                    batches.append(hot_batch)
            else:
                self._count(accountant, scanned=False)

        accountant.charge_partition_overhead(max(segments, 1))
        return batches

    def collect_batch(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ) -> ColumnBatch:
        decision = self.decision_for(predicate)
        # A populated hot partition forces a mixed-dictionary concat that
        # would decode interned columns again; only ask the main portion for
        # encoded columns when the whole result comes from it.
        hot_active = (
            self.table.hot is not None
            and self.table.hot.num_rows > 0
            and decision.scan_of(HOT_PARTITION)
        )
        batches = self._collect_segments(
            columns, predicate, accountant,
            encode_columns=() if hot_active else encode_columns,
        )
        return ColumnBatch.concat(batches)

    def collect_partition_batches(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ) -> List[ColumnBatch]:
        """Per-partition batches for partition-partial aggregation.

        Unlike :meth:`collect_batch` there is no concatenation, so every
        partition keeps its native representation — in particular the main
        portion's dictionary codes stay encoded even while a populated hot
        partition exists.  Charges are identical to :meth:`collect_batch`.
        """
        return self._collect_segments(columns, predicate, accountant,
                                      encode_columns=encode_columns)

    def select_rows(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        limit: Optional[int],
        accountant: CostAccountant,
    ) -> List[Dict[str, Any]]:
        decision = self.decision_for(predicate)
        segments = 0
        rows: List[Dict[str, Any]] = []

        if decision.scan_of(MAIN_PARTITION):
            self._count(accountant, scanned=True)
            main_rows, main_parts_touched = self._select_from_main(
                columns, predicate, accountant
            )
            segments += main_parts_touched
            rows.extend(main_rows)
        else:
            self._count(accountant, scanned=False)

        if self.table.hot is not None:
            if decision.scan_of(HOT_PARTITION):
                self._count(accountant, scanned=True)
                if self.table.hot.num_rows > 0:
                    hot_rows = SimpleAccessPath(self.table.hot, inner=True).select_rows(
                        columns, predicate, None, accountant
                    )
                    segments += 1
                    rows.extend(hot_rows)
            else:
                self._count(accountant, scanned=False)

        accountant.charge_partition_overhead(max(segments, 1))
        if limit is not None:
            rows = rows[:limit]
        return rows

    # -- writes ---------------------------------------------------------------------

    def insert(self, rows: Sequence[Mapping[str, Any]], accountant: CostAccountant) -> int:
        return self.table.insert_rows(rows, accountant)

    def _dml_decision(self, predicate: Optional[Predicate]) -> Optional[ScanDecision]:
        """The pruning decision gating a DML scan (``None`` = scan everything)."""
        if predicate is None or not zone_pruning_enabled():
            return None
        return self.decision_for(predicate)

    def update(
        self,
        assignments: Mapping[str, Any],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ) -> int:
        decision = self._dml_decision(predicate)
        affected = 0
        segments = 0
        hot = self.table.hot
        # Hot partition: behaves like an ordinary table.
        if hot is not None and hot.num_rows > 0:
            if decision is None or decision.scan_of(HOT_PARTITION):
                affected += SimpleAccessPath(hot, inner=True).update(
                    assignments, predicate, accountant
                )
            else:
                # Zone-pruned: skip the scan, replay its charges (the seed
                # path would scan, validate the SET values and update zero
                # rows).
                validate_assignments(hot.schema, assignments)
                hot.charge_filter_scan(predicate, accountant)
            segments += 1

        if decision is None or decision.scan_of(MAIN_PARTITION):
            affected_main, parts_touched = self._update_main(
                assignments, predicate, accountant
            )
            affected += affected_main
        else:
            parts_touched = self._charge_pruned_main_update(
                assignments, predicate, accountant
            )
        segments += parts_touched
        accountant.charge_partition_overhead(max(segments, 1))
        return affected

    def delete(self, predicate: Optional[Predicate], accountant: CostAccountant) -> int:
        decision = self._dml_decision(predicate)
        affected = 0
        hot = self.table.hot
        if hot is not None and hot.num_rows > 0:
            if decision is None or decision.scan_of(HOT_PARTITION):
                affected += SimpleAccessPath(hot, inner=True).delete(predicate, accountant)
            else:
                hot.charge_filter_scan(predicate, accountant)
        if decision is None or decision.scan_of(MAIN_PARTITION):
            positions, parts_touched = self._main_positions(predicate, accountant)
            if positions is None:
                positions = np.arange(self.table.main_num_rows, dtype=np.int64)
            for part in self.table.main_parts:
                part.delete_rows(positions, accountant)
            affected += len(positions)
        else:
            # The provably-empty position set deletes (and charges) nothing.
            parts_touched = self._charge_main_positions(predicate, accountant)
        accountant.charge_partition_overhead(parts_touched + 1)
        return affected

    # -- main (historic) portion helpers -----------------------------------------------

    def _collect_from_main(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
        encode_columns: Sequence[str] = (),
    ):
        table = self.table
        if not table.has_vertical_split:
            batch = SimpleAccessPath(table.main_parts[0], inner=True).collect_batch(
                columns, predicate, accountant, encode_columns=encode_columns
            )
            return batch, 1

        predicate_columns: Set[str] = set(predicate.columns()) if predicate else set()
        all_needed = set(columns) | predicate_columns
        parts_needed = table.main_parts_for_columns(sorted(all_needed))
        positions, _ = self._main_positions(predicate, accountant)
        self._charge_vertical_join(parts_needed, positions, accountant)

        num_rows = table.main_num_rows if positions is None else len(positions)
        arrays: Dict[str, Any] = {}
        grouped = self._group_columns_by_part(columns)
        for part, part_columns in grouped.items():
            if part.store is Store.ROW:
                part_batch = part.scan_batch(part_columns, positions, accountant)
                for name in part_columns:
                    arrays[name] = part_batch.column(name)
            else:
                # Column-store parts contribute their (codes, dictionary)
                # pairs undecoded; ColumnBatch.concat decodes only if the
                # hot partition forces a mixed-representation stack.
                for name in part_columns:
                    arrays[name] = part.column_batched(name, positions, accountant)
        return ColumnBatch(arrays, num_rows=num_rows), len(parts_needed)

    def _select_from_main(
        self,
        columns: Sequence[str],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ):
        table = self.table
        if not table.has_vertical_split:
            rows = SimpleAccessPath(table.main_parts[0], inner=True).select_rows(
                columns, predicate, None, accountant
            )
            return rows, 1

        requested = list(columns) if columns else list(table.schema.column_names)
        predicate_columns: Set[str] = set(predicate.columns()) if predicate else set()
        all_needed = set(requested) | predicate_columns
        parts_needed = table.main_parts_for_columns(sorted(all_needed))
        positions, _ = self._main_positions(predicate, accountant)
        self._charge_vertical_join(parts_needed, positions, accountant)

        grouped = self._group_columns_by_part(requested)
        partial_rows: List[List[Dict[str, Any]]] = []
        for part, part_columns in grouped.items():
            partial_rows.append(part.fetch_rows(positions, part_columns, accountant))
        if not partial_rows:
            return [], len(parts_needed)
        merged = []
        for pieces in zip(*partial_rows):
            row: Dict[str, Any] = {}
            for piece in pieces:
                row.update(piece)
            merged.append(row)
        return merged, len(parts_needed)

    def _update_main(
        self,
        assignments: Mapping[str, Any],
        predicate: Optional[Predicate],
        accountant: CostAccountant,
    ):
        table = self.table
        if not table.has_vertical_split:
            affected = SimpleAccessPath(table.main_parts[0], inner=True).update(
                assignments, predicate, accountant
            )
            return affected, 1

        predicate_columns: Set[str] = set(predicate.columns()) if predicate else set()
        all_needed = set(assignments) | predicate_columns
        parts_needed = table.main_parts_for_columns(sorted(all_needed))
        positions, _ = self._main_positions(predicate, accountant)
        self._charge_vertical_join(parts_needed, positions, accountant)
        if positions is None:
            positions = np.arange(table.main_num_rows, dtype=np.int64)

        affected = 0
        for part in table.main_parts:
            part_assignments = {
                name: value for name, value in assignments.items()
                if part.schema.has_column(name)
            }
            if part_assignments:
                affected = max(
                    affected, part.update_rows(positions, part_assignments, accountant)
                )
        return affected, len(parts_needed)

    def _charge_pruned_main_update(
        self,
        assignments: Mapping[str, Any],
        predicate: Predicate,
        accountant: CostAccountant,
    ) -> int:
        """Replay :meth:`_update_main`'s charges for a zone-pruned predicate.

        The seed path would locate zero matching rows (charging the filter
        scan and, across vertical parts, a zero-row re-assembly join),
        validate the SET values and then update nothing; the replayed
        charges are exactly those.  Returns the parts-touched count for the
        partition-overhead charge.
        """
        table = self.table
        validate_assignments(table.schema, assignments)
        if not table.has_vertical_split:
            table.main_parts[0].charge_filter_scan(predicate, accountant)
            return 1
        all_needed = set(assignments) | set(predicate.columns())
        parts_needed = table.main_parts_for_columns(sorted(all_needed))
        self._charge_main_positions(predicate, accountant)
        if len(parts_needed) >= 2:
            accountant.charge_hash_inserts("partition_join", 0)
            accountant.charge_hash_probes("partition_join", 0)
        return len(parts_needed)

    def _charge_main_positions(
        self, predicate: Predicate, accountant: CostAccountant
    ) -> int:
        """Replay :meth:`_main_positions`'s charges without scanning."""
        table = self.table
        if not table.has_vertical_split:
            table.main_parts[0].charge_filter_scan(predicate, accountant)
            return 1
        predicate_parts = table.main_parts_for_columns(sorted(predicate.columns()))
        if len(predicate_parts) == 1:
            predicate_parts[0].charge_filter_scan(predicate, accountant)
            return 1
        for name in sorted(predicate.columns()):
            table.part_containing(name).charge_column_scan(name, accountant)
        accountant.charge_predicate_evals(table.main_num_rows)
        return len(predicate_parts)

    def _main_positions(
        self, predicate: Optional[Predicate], accountant: CostAccountant
    ):
        """Positions (aligned across vertical parts) of main rows matching *predicate*."""
        table = self.table
        if predicate is None:
            return None, 0
        if not table.has_vertical_split:
            return table.main_parts[0].filter_positions(predicate, accountant), 1
        predicate_parts = table.main_parts_for_columns(sorted(predicate.columns()))
        if len(predicate_parts) == 1:
            return predicate_parts[0].filter_positions(predicate, accountant), 1
        # The predicate spans both vertical parts: evaluate it over the
        # aligned column arrays from both parts (vectorized when possible).
        referenced = sorted(predicate.columns())
        arrays: Dict[str, np.ndarray] = {}
        for name in referenced:
            part = table.part_containing(name)
            arrays[name] = part.column_array(name, None, accountant)
        num_rows = table.main_num_rows
        accountant.charge_predicate_evals(num_rows)
        mask = evaluate_predicate_mask(predicate, arrays, num_rows)
        return np.nonzero(mask)[0].astype(np.int64), len(predicate_parts)

    def _charge_vertical_join(
        self,
        parts_needed: Sequence[StoredTable],
        positions: Optional[np.ndarray],
        accountant: CostAccountant,
    ) -> None:
        """Charge the primary-key join that re-assembles tuples across vertical parts."""
        if len(parts_needed) < 2:
            return
        joined_rows = (
            self.table.main_num_rows if positions is None else int(len(positions))
        )
        accountant.charge_hash_inserts("partition_join", joined_rows)
        accountant.charge_hash_probes("partition_join", joined_rows)

    def _group_columns_by_part(self, columns: Sequence[str]):
        """Group requested columns by the main part that stores them."""
        grouped: Dict[StoredTable, List[str]] = {}
        for name in columns:
            part = self.table.part_containing(name)
            grouped.setdefault(part, []).append(name)
        return grouped


def access_path_for(table_object) -> AccessPath:
    """Build the appropriate access path for a stored or partitioned table."""
    if isinstance(table_object, PartitionedTable):
        return PartitionedAccessPath(table_object)
    return SimpleAccessPath(table_object)
