"""Aggregate functions and (grouped) accumulation.

The aggregation operator collects columnar batches from an access path and
feeds the value arrays through numpy reductions: ungrouped aggregates are
single reductions, grouped aggregates factorize the key columns and reduce
per group with ``bincount``/``reduceat``.  A dictionary-encoded group key
(:class:`~repro.engine.batch.EncodedColumn`) factorizes straight from its
sorted codes in O(n) — no value is decoded until the per-*group* key values
are emitted; plain value arrays factorize with ``np.unique``.  Value arrays
numpy cannot reduce (mixed objects, NULLs in object columns) fall back to the
scalar :class:`Accumulator` loop, which remains the semantic reference.

The *cost* of aggregation is charged by the operator through the timing
model; vectorized, code-based and scalar execution charge identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import EncodedColumn
from repro.errors import ExecutionError
from repro.query.ast import AggregateFunction, AggregateSpec


class Accumulator:
    """Incremental accumulator for one aggregate function."""

    def __init__(self, function: AggregateFunction) -> None:
        self.function = function
        self._count = 0
        self._sum = 0.0
        self._min: Any = None
        self._max: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        self._count += 1
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self._sum += value
        elif self.function is AggregateFunction.MIN:
            self._min = value if self._min is None else min(self._min, value)
        elif self.function is AggregateFunction.MAX:
            self._max = value if self._max is None else max(self._max, value)

    def result(self) -> Any:
        if self.function is AggregateFunction.COUNT:
            return self._count
        if self.function is AggregateFunction.SUM:
            return self._sum if self._count else None
        if self.function is AggregateFunction.AVG:
            return self._sum / self._count if self._count else None
        if self.function is AggregateFunction.MIN:
            return self._min
        return self._max


def aggregate_values(function: AggregateFunction, values: Iterable[Any]) -> Any:
    """Aggregate an iterable of values in one go."""
    accumulator = Accumulator(function)
    for value in values:
        accumulator.update(value)
    return accumulator.result()


class _GroupOrdering:
    """Lazy group-sorted row order of one aggregation.

    ``bincount``-served aggregates (COUNT/SUM/AVG over native arrays) never
    need the rows sorted by group; the stable argsort — the single most
    expensive step of a large group-by — runs only when a min/max ``reduceat``
    or a scalar per-group fold asks for it, and at most once.
    """

    __slots__ = ("_group_of_row", "_num_groups", "_num_rows", "_cached")

    def __init__(self, group_of_row: np.ndarray, num_groups: int, num_rows: int) -> None:
        self._group_of_row = group_of_row
        self._num_groups = num_groups
        self._num_rows = num_rows
        self._cached: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def get(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_order, bounds)``: the slice [bounds[g]:bounds[g+1]] of the
        reordered rows holds exactly group g's rows."""
        if self._cached is None:
            row_order = np.argsort(self._group_of_row, kind="stable")
            starts = np.searchsorted(
                self._group_of_row[row_order], np.arange(self._num_groups)
            )
            bounds = np.append(starts, self._num_rows)
            self._cached = (row_order, bounds)
        return self._cached


def _key_values_at(column: Any, first_rows: np.ndarray) -> List[Any]:
    """Group key values at the groups' first rows (one decode per group)."""
    if isinstance(column, EncodedColumn):
        return column.dictionary.decode_array(column.codes[first_rows]).tolist()
    array = column if isinstance(column, np.ndarray) else np.asarray(column, dtype=object)
    return array[first_rows].tolist()


def _is_reducible(values: Any) -> bool:
    """Whether numpy can reduce *values* directly (native dtype, no NULLs)."""
    return isinstance(values, np.ndarray) and values.dtype.kind in "iufb"


def _minmax_is_order_dependent(function: AggregateFunction, values: np.ndarray) -> bool:
    """Whether numpy min/max would diverge from the scalar fold.

    Python's ``min``/``max`` fold is order-dependent in the presence of NaN
    while numpy's reductions propagate NaN; such columns take the scalar
    reference path.
    """
    return (
        function in (AggregateFunction.MIN, AggregateFunction.MAX)
        and values.dtype.kind == "f"
        and bool(np.isnan(values).any())
    )


def _reduce_column(function: AggregateFunction, values: np.ndarray) -> Any:
    """Ungrouped numpy reduction over a native value array (no NULLs)."""
    count = len(values)
    if function is AggregateFunction.COUNT:
        return count
    if count == 0:
        return None
    if function is AggregateFunction.SUM:
        return float(np.sum(values, dtype=np.float64))
    if function is AggregateFunction.AVG:
        return float(np.sum(values, dtype=np.float64)) / count
    if _minmax_is_order_dependent(function, values):
        return aggregate_values(function, values.tolist())
    if function is AggregateFunction.MIN:
        return values.min().item()
    return values.max().item()


@dataclass
class GroupedAggregation:
    """Group-by aggregation over aligned column arrays."""

    aggregates: Sequence[AggregateSpec]
    group_by_names: Sequence[str]

    def run(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> List[Dict[str, Any]]:
        """Aggregate *num_rows* rows.

        ``aggregate_inputs[i]`` is the value array feeding ``aggregates[i]``
        (``None`` for ``COUNT(*)``); ``group_key_columns`` holds one aligned
        array per group-by output name (empty for an ungrouped aggregation).
        Group key columns may be :class:`EncodedColumn` pairs, which
        factorize from their codes without decoding; aggregate *inputs* are
        reduced by value and decode up front.
        """
        aggregate_inputs = [
            values.values if isinstance(values, EncodedColumn) else values
            for values in aggregate_inputs
        ]
        for values in aggregate_inputs:
            if values is not None and len(values) != num_rows:
                raise ExecutionError("aggregate input length does not match row count")
        for values in group_key_columns:
            if len(values) != num_rows:
                raise ExecutionError("group-by input length does not match row count")

        if not self.group_by_names:
            row: Dict[str, Any] = {}
            for spec, values in zip(self.aggregates, aggregate_inputs):
                if spec.function is AggregateFunction.COUNT and values is None:
                    row[spec.output_name] = num_rows
                elif _is_reducible(values):
                    row[spec.output_name] = _reduce_column(spec.function, values)
                else:
                    source: Iterable[Any] = (
                        values if values is not None else range(num_rows)
                    )
                    if isinstance(source, np.ndarray):
                        source = source.tolist()
                    row[spec.output_name] = aggregate_values(spec.function, source)
            return [row]

        grouped = self._run_grouped_vectorized(
            aggregate_inputs, group_key_columns, num_rows
        )
        if grouped is not None:
            return grouped
        return self._run_grouped_scalar(aggregate_inputs, group_key_columns, num_rows)

    def _run_grouped_vectorized(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> Optional[List[Dict[str, Any]]]:
        """Group-by via key factorization; ``None`` if the keys resist it.

        Dictionary-encoded key columns factorize from their sorted codes in
        O(n) (:meth:`EncodedColumn.factorize`) and decode one value per
        *group*; plain arrays factorize with ``np.unique``.  Groups are
        emitted in first-occurrence order, exactly like the scalar
        accumulator loop, so all paths produce identical result lists.
        """
        sizes: List[int] = []
        inverses: List[np.ndarray] = []
        for column in group_key_columns:
            if isinstance(column, EncodedColumn):
                nan_code = column.dictionary.nan_code
                if nan_code is not None and bool((column.codes == nan_code).any()):
                    # Decoding boxes every NaN key separately and the scalar
                    # reference keys groups per NaN object; defer to it.
                    return None
                distinct_codes, inverse = column.factorize()
                sizes.append(len(distinct_codes))
                inverses.append(inverse)
                continue
            array = column if isinstance(column, np.ndarray) else np.asarray(column, dtype=object)
            if array.dtype.kind == "f" and np.isnan(array).any():
                # np.unique would merge NaN keys into one group; the scalar
                # reference keys groups per NaN object.
                return None
            try:
                uniques, inverse = np.unique(array, return_inverse=True)
            except TypeError:
                # Unsortable key mix (e.g. NULLs in an object column).
                return None
            sizes.append(len(uniques))
            inverses.append(inverse.reshape(-1))
        if len(sizes) == 1:
            # A single key is already factorized densely (codes 0..G-1), so
            # first-occurrence positions come from one reverse assignment —
            # no second sort.  Assigning positions in reverse row order
            # leaves, per group, the smallest row index written last.
            num_groups = sizes[0]
            inverse = inverses[0]
            first_index = np.empty(num_groups, dtype=np.int64)
            first_index[inverse[::-1]] = np.arange(num_rows - 1, -1, -1)
        else:
            key_space = 1
            for size in sizes:
                key_space *= max(size, 1)
            if key_space > 2 ** 62:
                return None  # combined key would overflow int64
            combined = np.zeros(num_rows, dtype=np.int64)
            for size, inverse in zip(sizes, inverses):
                combined = combined * max(size, 1) + inverse
            _, first_index, inverse = np.unique(
                combined, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            num_groups = len(first_index)
        # Renumber groups by first occurrence to match scalar emission order.
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(num_groups, dtype=np.int64)
        rank[order] = np.arange(num_groups)
        group_of_row = rank[inverse]
        first_rows = first_index[order]

        key_values = [
            _key_values_at(column, first_rows) for column in group_key_columns
        ]
        ordering = _GroupOrdering(group_of_row, num_groups, num_rows)

        columns: List[List[Any]] = []
        for spec, values in zip(self.aggregates, aggregate_inputs):
            columns.append(
                self._grouped_aggregate(
                    spec.function, values, group_of_row, ordering, num_groups
                )
            )
        results = []
        for group in range(num_groups):
            row = {
                name: key_values[j][group]
                for j, name in enumerate(self.group_by_names)
            }
            for spec, column in zip(self.aggregates, columns):
                row[spec.output_name] = column[group]
            results.append(row)
        return results

    @staticmethod
    def _grouped_aggregate(
        function: AggregateFunction,
        values: Optional[Sequence[Any]],
        group_of_row: np.ndarray,
        ordering: "_GroupOrdering",
        num_groups: int,
    ) -> List[Any]:
        """Per-group results for one aggregate (vectorized when possible)."""
        counts = np.bincount(group_of_row, minlength=num_groups)
        if values is None:
            # COUNT(*): every row counts.
            return counts.tolist()
        if _is_reducible(values):
            if function is AggregateFunction.COUNT:
                return counts.tolist()
            if function in (AggregateFunction.SUM, AggregateFunction.AVG):
                sums = np.bincount(
                    group_of_row, weights=values.astype(np.float64, copy=False),
                    minlength=num_groups,
                )
                if function is AggregateFunction.SUM:
                    return sums.tolist()
                return (sums / counts).tolist()
            if not _minmax_is_order_dependent(function, values):
                row_order, bounds = ordering.get()
                ordered = values[row_order]
                if function is AggregateFunction.MIN:
                    return np.minimum.reduceat(ordered, bounds[:-1]).tolist()
                return np.maximum.reduceat(ordered, bounds[:-1]).tolist()
        # Object/string values: scalar-aggregate each group's slice, which
        # preserves exact NULL-skipping semantics.
        row_order, bounds = ordering.get()
        ordered_values = (
            values[row_order].tolist()
            if isinstance(values, np.ndarray)
            else [values[i] for i in row_order.tolist()]
        )
        return [
            aggregate_values(
                function, ordered_values[bounds[group]: bounds[group + 1]]
            )
            for group in range(num_groups)
        ]

    def _run_grouped_scalar(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> List[Dict[str, Any]]:
        """Reference implementation: per-row accumulator updates."""
        aggregate_inputs = [
            values.tolist() if isinstance(values, (np.ndarray, EncodedColumn)) else values
            for values in aggregate_inputs
        ]
        group_key_columns = [
            column.tolist() if isinstance(column, (np.ndarray, EncodedColumn)) else column
            for column in group_key_columns
        ]
        groups: Dict[Tuple[Any, ...], List[Accumulator]] = {}
        for position in range(num_rows):
            key = tuple(column[position] for column in group_key_columns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Accumulator(spec.function) for spec in self.aggregates]
                groups[key] = accumulators
            for accumulator, values in zip(accumulators, aggregate_inputs):
                accumulator.update(values[position] if values is not None else 1)
        results = []
        for key, accumulators in groups.items():
            row = dict(zip(self.group_by_names, key))
            for spec, accumulator in zip(self.aggregates, accumulators):
                row[spec.output_name] = accumulator.result()
            results.append(row)
        return results
