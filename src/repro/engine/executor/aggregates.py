"""Aggregate functions and (grouped) accumulation.

The aggregation operator collects column value arrays from an access path and
feeds them through these accumulators.  The accumulators are deliberately
simple — correctness is what matters here; the *cost* of aggregation is
charged by the operator through the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.query.ast import AggregateFunction, AggregateSpec


class Accumulator:
    """Incremental accumulator for one aggregate function."""

    def __init__(self, function: AggregateFunction) -> None:
        self.function = function
        self._count = 0
        self._sum = 0.0
        self._min: Any = None
        self._max: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        self._count += 1
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self._sum += value
        elif self.function is AggregateFunction.MIN:
            self._min = value if self._min is None else min(self._min, value)
        elif self.function is AggregateFunction.MAX:
            self._max = value if self._max is None else max(self._max, value)

    def result(self) -> Any:
        if self.function is AggregateFunction.COUNT:
            return self._count
        if self.function is AggregateFunction.SUM:
            return self._sum if self._count else None
        if self.function is AggregateFunction.AVG:
            return self._sum / self._count if self._count else None
        if self.function is AggregateFunction.MIN:
            return self._min
        return self._max


def aggregate_values(function: AggregateFunction, values: Iterable[Any]) -> Any:
    """Aggregate an iterable of values in one go."""
    accumulator = Accumulator(function)
    for value in values:
        accumulator.update(value)
    return accumulator.result()


@dataclass
class GroupedAggregation:
    """Group-by aggregation over aligned column arrays."""

    aggregates: Sequence[AggregateSpec]
    group_by_names: Sequence[str]

    def run(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> List[Dict[str, Any]]:
        """Aggregate *num_rows* rows.

        ``aggregate_inputs[i]`` is the value array feeding ``aggregates[i]``
        (``None`` for ``COUNT(*)``); ``group_key_columns`` holds one aligned
        array per group-by output name (empty for an ungrouped aggregation).
        """
        for values in aggregate_inputs:
            if values is not None and len(values) != num_rows:
                raise ExecutionError("aggregate input length does not match row count")
        for values in group_key_columns:
            if len(values) != num_rows:
                raise ExecutionError("group-by input length does not match row count")

        if not self.group_by_names:
            row: Dict[str, Any] = {}
            for spec, values in zip(self.aggregates, aggregate_inputs):
                source: Iterable[Any] = values if values is not None else range(num_rows)
                if spec.function is AggregateFunction.COUNT and values is None:
                    row[spec.output_name] = num_rows
                else:
                    row[spec.output_name] = aggregate_values(spec.function, source)
            return [row]

        groups: Dict[Tuple[Any, ...], List[Accumulator]] = {}
        for position in range(num_rows):
            key = tuple(column[position] for column in group_key_columns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Accumulator(spec.function) for spec in self.aggregates]
                groups[key] = accumulators
            for accumulator, values in zip(accumulators, aggregate_inputs):
                accumulator.update(values[position] if values is not None else 1)
        results = []
        for key, accumulators in groups.items():
            row = dict(zip(self.group_by_names, key))
            for spec, accumulator in zip(self.aggregates, accumulators):
                row[spec.output_name] = accumulator.result()
            results.append(row)
        return results
