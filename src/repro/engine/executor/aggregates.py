"""Aggregate functions and (grouped) accumulation.

The aggregation operator collects columnar batches from an access path and
feeds the value arrays through numpy reductions: ungrouped aggregates are
single reductions, grouped aggregates factorize the key columns and reduce
per group with ``bincount``/``reduceat``.  Value arrays numpy cannot reduce
(mixed objects, NULLs in object columns) fall back to the scalar
:class:`Accumulator` loop, which remains the semantic reference.

With aggregate pushdown enabled (:mod:`repro.engine.executor.agg_pushdown`),
dictionary-encoded columns never materialise per-row values:

* a single :class:`~repro.engine.batch.EncodedColumn` group key uses its
  codes directly as dense group ids — no factorization, one ``bincount``,
  groups renumbered to first-occurrence order with one reverse assignment,
  and one key decode per *group* at emit time;
* ``SUM``/``AVG`` over an encoded numeric column reduce in the dictionary
  domain — ``bincount(codes) · decoded(dictionary)`` ungrouped, a
  weight-gather ``bincount`` grouped — touching O(|dictionary|) decoded
  values instead of O(rows);
* ``COUNT``/``MIN``/``MAX`` reduce over the codes (the sorted dictionary
  makes the smallest live code the minimum value) and decode one value per
  result.

The module also hosts the partition-partial machinery: ``SUM``/``AVG`` split
into mergeable ``(sum, count)`` states so each partition aggregates
independently and :func:`merge_partition_partials` combines the states
associatively, preserving the reference first-occurrence group order.

The *cost* of aggregation is charged by the operator through the timing
model; vectorized, code-domain, partial and scalar execution all charge
identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import EncodedColumn
from repro.engine.executor.agg_pushdown import aggregate_pushdown_enabled
from repro.errors import ExecutionError
from repro.query.ast import AggregateFunction, AggregateSpec


class Accumulator:
    """Incremental accumulator for one aggregate function.

    The running sum starts as the int ``0`` so that summing an all-int
    column yields an int, exactly like the vectorized reductions — the
    scalar reference must not drift to float where numpy preserves the
    integer domain.
    """

    def __init__(self, function: AggregateFunction) -> None:
        self.function = function
        self._count = 0
        self._sum: Any = 0
        self._min: Any = None
        self._max: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        self._count += 1
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self._sum += value
        elif self.function is AggregateFunction.MIN:
            self._min = value if self._min is None else min(self._min, value)
        elif self.function is AggregateFunction.MAX:
            self._max = value if self._max is None else max(self._max, value)

    def result(self) -> Any:
        if self.function is AggregateFunction.COUNT:
            return self._count
        if self.function is AggregateFunction.SUM:
            return self._sum if self._count else None
        if self.function is AggregateFunction.AVG:
            return self._sum / self._count if self._count else None
        if self.function is AggregateFunction.MIN:
            return self._min
        return self._max


def aggregate_values(function: AggregateFunction, values: Iterable[Any]) -> Any:
    """Aggregate an iterable of values in one go."""
    accumulator = Accumulator(function)
    for value in values:
        accumulator.update(value)
    return accumulator.result()


class _GroupOrdering:
    """Lazy group-sorted row order of one aggregation.

    ``bincount``-served aggregates (COUNT/SUM/AVG over native arrays) never
    need the rows sorted by group; the stable argsort — the single most
    expensive step of a large group-by — runs only when a min/max ``reduceat``
    or a scalar per-group fold asks for it, and at most once.
    """

    __slots__ = ("_group_of_row", "_num_groups", "_num_rows", "_cached")

    def __init__(self, group_of_row: np.ndarray, num_groups: int, num_rows: int) -> None:
        self._group_of_row = group_of_row
        self._num_groups = num_groups
        self._num_rows = num_rows
        self._cached: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def get(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_order, bounds)``: the slice [bounds[g]:bounds[g+1]] of the
        reordered rows holds exactly group g's rows."""
        if self._cached is None:
            row_order = np.argsort(self._group_of_row, kind="stable")
            starts = np.searchsorted(
                self._group_of_row[row_order], np.arange(self._num_groups)
            )
            bounds = np.append(starts, self._num_rows)
            self._cached = (row_order, bounds)
        return self._cached


def _key_values_at(column: Any, first_rows: np.ndarray) -> List[Any]:
    """Group key values at the groups' first rows (one decode per group)."""
    if isinstance(column, EncodedColumn):
        return column.dictionary.decode_array(column.codes[first_rows]).tolist()
    array = column if isinstance(column, np.ndarray) else np.asarray(column, dtype=object)
    return array[first_rows].tolist()


def _is_reducible(values: Any) -> bool:
    """Whether numpy can reduce *values* directly (native dtype, no NULLs)."""
    return isinstance(values, np.ndarray) and values.dtype.kind in "iufb"


def _minmax_is_order_dependent(function: AggregateFunction, values: np.ndarray) -> bool:
    """Whether numpy min/max would diverge from the scalar fold.

    Python's ``min``/``max`` fold is order-dependent in the presence of NaN
    while numpy's reductions propagate NaN; such columns take the scalar
    reference path.
    """
    return (
        function in (AggregateFunction.MIN, AggregateFunction.MAX)
        and values.dtype.kind == "f"
        and bool(np.isnan(values).any())
    )


def _reduce_column(function: AggregateFunction, values: np.ndarray) -> Any:
    """Ungrouped numpy reduction over a native value array (no NULLs)."""
    count = len(values)
    if function is AggregateFunction.COUNT:
        return count
    if count == 0:
        return None
    if function is AggregateFunction.SUM:
        if values.dtype.kind in "iub":
            if _int_sum_is_safe(values):
                # Integer inputs sum to an int, like the scalar reference.
                return int(np.sum(values, dtype=np.int64))
            # int64 could wrap and float64 could round: exact scalar fold.
            return aggregate_values(function, values.tolist())
        return float(np.sum(values, dtype=np.float64))
    if function is AggregateFunction.AVG:
        return float(np.sum(values, dtype=np.float64)) / count
    if _minmax_is_order_dependent(function, values):
        return aggregate_values(function, values.tolist())
    if function is AggregateFunction.MIN:
        return values.min().item()
    return values.max().item()


def _int_sum_is_safe(values: np.ndarray, count: Optional[int] = None) -> bool:
    """Whether a vectorized sum of integer *values* is provably exact.

    The vectorized paths accumulate in float64 (``bincount`` weights) or
    int64; both are exact only while every partial sum stays inside the
    2**53 window, bounded here by ``count * max(|min|, |max|)``.  Larger
    inputs take the exact scalar fold (Python ints never wrap).  *count*
    overrides the row count when *values* is a dictionary whose codes repeat
    (encoded columns).
    """
    if count is None:
        count = len(values)
    if count == 0 or len(values) == 0 or values.dtype.kind == "b":
        return True
    peak = max(abs(int(values.min())), abs(int(values.max())), 1)
    return peak * count < 2 ** 53


# -- code/dictionary-domain reductions over encoded columns -----------------------------

#: Sentinel: the encoded fast path cannot serve this (decode and fall back).
_UNSUPPORTED = object()


def _dictionary_reals(dictionary) -> Optional[np.ndarray]:
    """The dictionary's real entries as a numeric array aligned with the
    value codes (the reserved NULL slot, if any, excluded), or ``None`` when
    the entries are not numeric."""
    values = dictionary.values_array
    if getattr(dictionary, "has_null", False):
        values = values[1:]
    if values.dtype.kind in "iufb":
        return values
    if values.dtype != object:
        return None  # strings etc.
    try:
        return np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        return None


def _normalized(value: Any) -> Any:
    return value.item() if isinstance(value, np.generic) else value


def _reduce_encoded(function: AggregateFunction, column: EncodedColumn) -> Any:
    """Ungrouped reduction in the code/dictionary domain, or ``_UNSUPPORTED``.

    ``SUM``/``AVG`` over a numeric dictionary reduce as
    ``bincount(codes) · decoded(dictionary)`` — the dot is restricted to the
    codes actually stored so an orphaned NaN dictionary entry with a zero
    count cannot poison the total.  ``MIN``/``MAX`` reduce the codes (the
    sorted dictionary makes the smallest live value code the minimum) and
    decode exactly one value; NaN-bearing columns fall back to the
    order-dependent scalar fold.
    """
    codes = column.codes
    dictionary = column.dictionary
    num_rows = len(codes)
    has_null = bool(getattr(dictionary, "has_null", False))
    null_count = int(np.count_nonzero(codes == 0)) if has_null else 0
    if function is AggregateFunction.COUNT:
        return num_rows - null_count
    if num_rows == 0:
        return None
    if function in (AggregateFunction.SUM, AggregateFunction.AVG):
        if len(dictionary) * 4 > num_rows:
            # A dictionary nearly as large as the column: the per-code
            # bincount costs more than decoding and summing directly.
            return _UNSUPPORTED
        reals = _dictionary_reals(dictionary)
        if reals is None:
            return _UNSUPPORTED
        if reals.dtype.kind in "iu" and not _int_sum_is_safe(reals, num_rows):
            return _UNSUPPORTED  # the decode fallback folds exactly
        non_null = num_rows - null_count
        if non_null == 0:
            return None
        offset = 1 if has_null else 0
        counts = np.bincount(codes, minlength=len(dictionary))[offset:]
        used = counts > 0
        total = np.dot(counts[used], reals[used])
        if function is AggregateFunction.SUM:
            if reals.dtype.kind in "iub":
                return int(total)
            return float(total)
        return float(total) / non_null
    # MIN / MAX
    nan_code = dictionary.nan_code
    if nan_code is not None and bool((codes == nan_code).any()):
        return _UNSUPPORTED  # scalar fold is order-dependent around NaN
    live = codes[codes != 0] if has_null else codes
    if len(live) == 0:
        return None
    if function is AggregateFunction.MIN:
        return _normalized(dictionary.decode(int(live.min())))
    return _normalized(dictionary.decode(int(live.max())))


def _grouped_encoded(
    function: AggregateFunction,
    column: EncodedColumn,
    group_of_row: np.ndarray,
    ordering: "_GroupOrdering",
    counts: np.ndarray,
    num_groups: int,
) -> Any:
    """Per-group reduction in the code domain, or ``_UNSUPPORTED``."""
    codes = column.codes
    dictionary = column.dictionary
    has_null = bool(getattr(dictionary, "has_null", False))
    if function is AggregateFunction.COUNT:
        if not has_null:
            return counts.tolist()
        valid = codes != 0
        return np.bincount(group_of_row[valid], minlength=num_groups).tolist()
    if function in (AggregateFunction.SUM, AggregateFunction.AVG):
        reals = _dictionary_reals(dictionary)
        if reals is None:
            return _UNSUPPORTED
        if reals.dtype.kind in "iu" and not _int_sum_is_safe(reals, len(codes)):
            return _UNSUPPORTED  # the decode fallback folds exactly
        weights = reals.astype(np.float64, copy=False)
        if has_null:
            # Skip NULL rows exactly like the scalar fold; ``bincount``
            # accumulates in row order, so the per-group float sums are
            # bit-identical to the scalar reference's additions.
            valid = codes != 0
            groups = group_of_row[valid]
            sums = np.bincount(
                groups, weights=weights[codes[valid] - 1], minlength=num_groups
            )
            non_null = np.bincount(groups, minlength=num_groups)
        else:
            sums = np.bincount(
                group_of_row, weights=weights[codes], minlength=num_groups
            )
            non_null = counts
        if function is AggregateFunction.SUM:
            if reals.dtype.kind in "iub":
                return [int(s) if c else None for s, c in zip(sums, non_null)]
            return [float(s) if c else None for s, c in zip(sums, non_null)]
        return [float(s / c) if c else None for s, c in zip(sums, non_null)]
    # MIN / MAX: reduce the codes per group, decode one value per group.
    nan_code = dictionary.nan_code
    if nan_code is not None and bool((codes == nan_code).any()):
        return _UNSUPPORTED  # scalar fold is order-dependent around NaN
    if has_null:
        return _UNSUPPORTED  # NULL-skipping per-group fold stays scalar
    if num_groups == 0:
        return []
    row_order, bounds = ordering.get()
    ordered = codes[row_order]
    if function is AggregateFunction.MIN:
        extremes = np.minimum.reduceat(ordered, bounds[:-1])
    else:
        extremes = np.maximum.reduceat(ordered, bounds[:-1])
    return dictionary.decode_array(extremes).tolist()


@dataclass
class GroupedAggregation:
    """Group-by aggregation over aligned column arrays."""

    aggregates: Sequence[AggregateSpec]
    group_by_names: Sequence[str]

    def run(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> List[Dict[str, Any]]:
        """Aggregate *num_rows* rows.

        ``aggregate_inputs[i]`` is the value array feeding ``aggregates[i]``
        (``None`` for ``COUNT(*)``); ``group_key_columns`` holds one aligned
        array per group-by output name (empty for an ungrouped aggregation).
        Group key columns may be :class:`EncodedColumn` pairs, which group
        from their codes without decoding; encoded aggregate *inputs* reduce
        in the dictionary domain when pushdown is enabled and decode to
        value arrays otherwise (the decode-then-reduce reference).
        """
        if aggregate_pushdown_enabled():
            aggregate_inputs = list(aggregate_inputs)
        else:
            # Decode-then-reduce reference: encoded inputs materialise up
            # front, exactly like the pre-pushdown pipeline.
            aggregate_inputs = [
                values.values if isinstance(values, EncodedColumn) else values
                for values in aggregate_inputs
            ]
        for values in aggregate_inputs:
            if values is not None and len(values) != num_rows:
                raise ExecutionError("aggregate input length does not match row count")
        for values in group_key_columns:
            if len(values) != num_rows:
                raise ExecutionError("group-by input length does not match row count")

        if not self.group_by_names:
            row: Dict[str, Any] = {}
            for spec, values in zip(self.aggregates, aggregate_inputs):
                if spec.function is AggregateFunction.COUNT and values is None:
                    row[spec.output_name] = num_rows
                    continue
                if isinstance(values, EncodedColumn):
                    reduced = _reduce_encoded(spec.function, values)
                    if reduced is not _UNSUPPORTED:
                        row[spec.output_name] = reduced
                        continue
                    values = values.values
                if _is_reducible(values):
                    row[spec.output_name] = _reduce_column(spec.function, values)
                else:
                    source: Iterable[Any] = (
                        values if values is not None else range(num_rows)
                    )
                    if isinstance(source, np.ndarray):
                        source = source.tolist()
                    row[spec.output_name] = aggregate_values(spec.function, source)
            return [row]

        grouped = self._run_grouped_vectorized(
            aggregate_inputs, group_key_columns, num_rows
        )
        if grouped is not None:
            return grouped
        return self._run_grouped_scalar(aggregate_inputs, group_key_columns, num_rows)

    def _run_grouped_vectorized(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> Optional[List[Dict[str, Any]]]:
        """Group-by via key factorization; ``None`` if the keys resist it.

        A single dictionary-encoded key skips factorization entirely: its
        codes serve directly as dense group ids (aggregate pushdown), with
        first-occurrence positions from one reverse assignment.  Multi-key
        groupings factorize encoded columns from their sorted codes in O(n)
        (:meth:`EncodedColumn.factorize`) and plain arrays with
        ``np.unique``.  Either way one key value decodes per *group*, and
        groups are emitted in first-occurrence order, exactly like the
        scalar accumulator loop, so all paths produce identical result
        lists.
        """
        derived = self._derive_groups(group_key_columns, num_rows)
        if derived is None:
            return None
        group_of_row, first_rows, num_groups = derived

        key_values = [
            _key_values_at(column, first_rows) for column in group_key_columns
        ]
        ordering = _GroupOrdering(group_of_row, num_groups, num_rows)

        columns: List[List[Any]] = []
        for spec, values in zip(self.aggregates, aggregate_inputs):
            columns.append(
                self._grouped_aggregate(
                    spec.function, values, group_of_row, ordering, num_groups
                )
            )
        results = []
        for group in range(num_groups):
            row = {
                name: key_values[j][group]
                for j, name in enumerate(self.group_by_names)
            }
            for spec, column in zip(self.aggregates, columns):
                row[spec.output_name] = column[group]
            results.append(row)
        return results

    @staticmethod
    def _derive_groups(
        group_key_columns: Sequence[Sequence[Any]], num_rows: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
        """``(group_of_row, first_rows, num_groups)`` in first-occurrence
        order, or ``None`` when the keys resist vectorization."""
        single = group_key_columns[0] if len(group_key_columns) == 1 else None
        if isinstance(single, EncodedColumn) and aggregate_pushdown_enabled():
            # Code-domain grouping: the codes *are* dense group ids — no
            # factorization, no inverse; one scatter marks the used codes,
            # one reverse assignment finds each code's first occurrence, and
            # a rank gather renumbers rows to first-occurrence group order.
            nan_code = single.dictionary.nan_code
            if nan_code is not None and bool((single.codes == nan_code).any()):
                # The scalar reference keys groups per NaN object; defer.
                return None
            codes = single.codes
            capacity = max(len(single.dictionary), 1)
            first_by_code = np.empty(capacity, dtype=np.int64)
            first_by_code[codes[::-1]] = np.arange(num_rows - 1, -1, -1,
                                                   dtype=np.int64)
            used = np.zeros(capacity, dtype=bool)
            used[codes] = True
            used_codes = np.nonzero(used)[0]
            first_occurrence = first_by_code[used_codes]
            order = np.argsort(first_occurrence, kind="stable")
            rank = np.empty(capacity, dtype=np.int64)
            num_groups = len(used_codes)
            rank[used_codes[order]] = np.arange(num_groups, dtype=np.int64)
            return rank[codes], first_occurrence[order], num_groups

        sizes: List[int] = []
        inverses: List[np.ndarray] = []
        for column in group_key_columns:
            if isinstance(column, EncodedColumn):
                nan_code = column.dictionary.nan_code
                if nan_code is not None and bool((column.codes == nan_code).any()):
                    # Decoding boxes every NaN key separately and the scalar
                    # reference keys groups per NaN object; defer to it.
                    return None
                distinct_codes, inverse = column.factorize()
                sizes.append(len(distinct_codes))
                inverses.append(inverse)
                continue
            array = column if isinstance(column, np.ndarray) else np.asarray(column, dtype=object)
            if array.dtype.kind == "f" and np.isnan(array).any():
                # np.unique would merge NaN keys into one group; the scalar
                # reference keys groups per NaN object.
                return None
            try:
                uniques, inverse = np.unique(array, return_inverse=True)
            except TypeError:
                # Unsortable key mix (e.g. NULLs in an object column).
                return None
            sizes.append(len(uniques))
            inverses.append(inverse.reshape(-1))
        if len(sizes) == 1:
            # A single key is already factorized densely (codes 0..G-1), so
            # first-occurrence positions come from one reverse assignment —
            # no second sort.  Assigning positions in reverse row order
            # leaves, per group, the smallest row index written last.
            num_groups = sizes[0]
            inverse = inverses[0]
            first_index = np.empty(num_groups, dtype=np.int64)
            first_index[inverse[::-1]] = np.arange(num_rows - 1, -1, -1)
        else:
            key_space = 1
            for size in sizes:
                key_space *= max(size, 1)
            if key_space > 2 ** 62:
                return None  # combined key would overflow int64
            combined = np.zeros(num_rows, dtype=np.int64)
            for size, inverse in zip(sizes, inverses):
                combined = combined * max(size, 1) + inverse
            _, first_index, inverse = np.unique(
                combined, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            num_groups = len(first_index)
        # Renumber groups by first occurrence to match scalar emission order.
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(num_groups, dtype=np.int64)
        rank[order] = np.arange(num_groups)
        return rank[inverse], first_index[order], num_groups

    @staticmethod
    def _grouped_aggregate(
        function: AggregateFunction,
        values: Optional[Sequence[Any]],
        group_of_row: np.ndarray,
        ordering: "_GroupOrdering",
        num_groups: int,
    ) -> List[Any]:
        """Per-group results for one aggregate (vectorized when possible)."""
        counts = np.bincount(group_of_row, minlength=num_groups)
        if values is None:
            # COUNT(*): every row counts.
            return counts.tolist()
        if isinstance(values, EncodedColumn):
            reduced = _grouped_encoded(
                function, values, group_of_row, ordering, counts, num_groups
            )
            if reduced is not _UNSUPPORTED:
                return reduced
            values = values.values
        if _is_reducible(values):
            if function is AggregateFunction.COUNT:
                return counts.tolist()
            if function in (AggregateFunction.SUM, AggregateFunction.AVG):
                if values.dtype.kind not in "iub" or _int_sum_is_safe(values):
                    sums = np.bincount(
                        group_of_row,
                        weights=values.astype(np.float64, copy=False),
                        minlength=num_groups,
                    )
                    if function is AggregateFunction.SUM:
                        if values.dtype.kind in "iub":
                            # Integer inputs sum to ints, like the scalar fold.
                            return [int(value) for value in sums]
                        return sums.tolist()
                    return (sums / counts).tolist()
                # Unsafe integer sums (float64 weights would round, int64
                # could wrap): fall through to the exact scalar fold.
            elif not _minmax_is_order_dependent(function, values):
                row_order, bounds = ordering.get()
                ordered = values[row_order]
                if function is AggregateFunction.MIN:
                    return np.minimum.reduceat(ordered, bounds[:-1]).tolist()
                return np.maximum.reduceat(ordered, bounds[:-1]).tolist()
        # Object/string values: scalar-aggregate each group's slice, which
        # preserves exact NULL-skipping semantics.
        row_order, bounds = ordering.get()
        ordered_values = (
            values[row_order].tolist()
            if isinstance(values, np.ndarray)
            else [values[i] for i in row_order.tolist()]
        )
        return [
            aggregate_values(
                function, ordered_values[bounds[group]: bounds[group + 1]]
            )
            for group in range(num_groups)
        ]

    def _run_grouped_scalar(
        self,
        aggregate_inputs: Sequence[Optional[Sequence[Any]]],
        group_key_columns: Sequence[Sequence[Any]],
        num_rows: int,
    ) -> List[Dict[str, Any]]:
        """Reference implementation: per-row accumulator updates."""
        aggregate_inputs = [
            values.tolist() if isinstance(values, (np.ndarray, EncodedColumn)) else values
            for values in aggregate_inputs
        ]
        group_key_columns = [
            column.tolist() if isinstance(column, (np.ndarray, EncodedColumn)) else column
            for column in group_key_columns
        ]
        groups: Dict[Tuple[Any, ...], List[Accumulator]] = {}
        for position in range(num_rows):
            key = tuple(column[position] for column in group_key_columns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Accumulator(spec.function) for spec in self.aggregates]
                groups[key] = accumulators
            for accumulator, values in zip(accumulators, aggregate_inputs):
                accumulator.update(values[position] if values is not None else 1)
        results = []
        for key, accumulators in groups.items():
            row = dict(zip(self.group_by_names, key))
            for spec, accumulator in zip(self.aggregates, accumulators):
                row[spec.output_name] = accumulator.result()
            results.append(row)
        return results


# -- partition-partial aggregation ------------------------------------------------------
#
# A partitioned table aggregates each partition independently and merges the
# per-partition states associatively (zone-pruned partitions contribute
# nothing; no batch concatenation).  ``AVG`` is the one function whose final
# value does not merge, so each original aggregate expands into mergeable
# primitives — ``AVG(x)`` becomes ``(SUM(x), COUNT(x))`` — that the
# per-partition :class:`GroupedAggregation` computes with its ordinary
# (code-domain capable) kernels.


def _expanded_specs(
    aggregates: Sequence[AggregateSpec],
) -> Tuple[List[AggregateSpec], List[List[str]]]:
    """Mergeable primitive specs plus, per original spec, their aliases."""
    expanded: List[AggregateSpec] = []
    layout: List[List[str]] = []
    for index, spec in enumerate(aggregates):
        if spec.function is AggregateFunction.AVG:
            parts = [
                AggregateSpec(AggregateFunction.SUM, spec.column,
                              alias=f"__partial_{index}_sum"),
                AggregateSpec(AggregateFunction.COUNT, spec.column,
                              alias=f"__partial_{index}_count"),
            ]
        else:
            parts = [
                AggregateSpec(spec.function, spec.column,
                              alias=f"__partial_{index}_{spec.function.value}"),
            ]
        expanded.extend(parts)
        layout.append([part.alias for part in parts])
    return expanded, layout


def partition_partial_rows(
    aggregates: Sequence[AggregateSpec],
    group_by_names: Sequence[str],
    aggregate_inputs: Sequence[Optional[Sequence[Any]]],
    group_key_columns: Sequence[Sequence[Any]],
    num_rows: int,
) -> List[Dict[str, Any]]:
    """One partition's mergeable partial states, keyed by group values."""
    expanded, layout = _expanded_specs(aggregates)
    expanded_inputs: List[Optional[Sequence[Any]]] = []
    for values, aliases in zip(aggregate_inputs, layout):
        expanded_inputs.extend([values] * len(aliases))
    aggregation = GroupedAggregation(
        aggregates=expanded, group_by_names=list(group_by_names)
    )
    return aggregation.run(expanded_inputs, group_key_columns, num_rows)


def _merge_partial(function: AggregateFunction, left: Any, right: Any) -> Any:
    """Combine two partial states of one primitive (``None`` = no values)."""
    if function is AggregateFunction.COUNT:
        return left + right
    if left is None:
        return right
    if right is None:
        return left
    if function is AggregateFunction.SUM:
        return left + right
    if function is AggregateFunction.MIN:
        return min(left, right)
    return max(left, right)


def merge_partition_partials(
    aggregates: Sequence[AggregateSpec],
    group_by_names: Sequence[str],
    per_partition_rows: Sequence[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-partition partial states into the final result rows.

    Groups are keyed by their key values (so partitions with different
    dictionary representations merge correctly) and emitted in
    first-occurrence order across the partitions in partition order —
    exactly the order the concatenate-then-reduce reference emits.
    Unorderable partial merges raise ``TypeError``; the caller falls back to
    the reference aggregation over the concatenated batches.
    """
    expanded, layout = _expanded_specs(aggregates)
    merged: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for rows in per_partition_rows:
        for row in rows:
            key = tuple(row[name] for name in group_by_names)
            entry = merged.get(key)
            if entry is None:
                merged[key] = dict(row)
                order.append(key)
            else:
                for spec in expanded:
                    alias = spec.alias
                    entry[alias] = _merge_partial(
                        spec.function, entry[alias], row[alias]
                    )
    results: List[Dict[str, Any]] = []
    for key in order:
        entry = merged[key]
        row = {name: entry[name] for name in group_by_names}
        for spec, aliases in zip(aggregates, layout):
            partials = [entry[alias] for alias in aliases]
            if spec.function is AggregateFunction.AVG:
                total, count = partials
                row[spec.output_name] = total / count if count else None
            else:
                # COUNT/SUM/MIN/MAX partial states are the final values.
                row[spec.output_name] = partials[0]
        results.append(row)
    if not group_by_names and not results:
        # Every partition was pruned or empty: the ungrouped reference still
        # emits one row of identity aggregates.
        identity = {
            spec.output_name: 0 if spec.function is AggregateFunction.COUNT else None
            for spec in aggregates
        }
        results.append(identity)
    return results
