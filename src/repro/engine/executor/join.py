"""Hash joins between the query's base table and joined (dimension) tables.

The join implementation is deliberately simple — an equi hash join that builds
on the joined table and probes with the base table's key values.  Two costs
matter for the storage advisor:

* the build/probe work itself (proportional to the participating rows), and
* a **layout-conversion penalty** when the two sides live in different stores
  (the paper: keeping joined tables in the same store "saves the conversion of
  the different memory layouts and allows for faster joins").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.executor.access import AccessPath
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.query.ast import JoinClause


@dataclass
class JoinedColumns:
    """Result of joining one dimension table against the base rows.

    ``match_mask[i]`` says whether base row *i* found a join partner; the
    aligned ``columns`` arrays contain the dimension attributes for matching
    rows (``None`` where there is no match — callers filter by the mask).
    """

    match_mask: np.ndarray
    columns: Dict[str, List[Any]]


def join_dimension(
    base_key_values: Sequence[Any],
    join: JoinClause,
    dimension_path: AccessPath,
    needed_columns: Sequence[str],
    base_store: Store,
    accountant: CostAccountant,
) -> JoinedColumns:
    """Join the base table's key values against *dimension_path*.

    ``needed_columns`` are the dimension attributes the query references
    (group-by columns, aggregated columns); the join key column is fetched in
    addition.  The returned column arrays are aligned with
    ``base_key_values`` and keyed by the qualified ``"table.column"`` name.
    """
    fetch_columns = [join.right_column] + [
        name for name in needed_columns if name != join.right_column
    ]
    dimension_values = dimension_path.collect_columns(fetch_columns, None, accountant)
    dimension_rows = len(dimension_values[join.right_column])

    # Cross-store joins pay for converting the (smaller) build side's layout.
    if dimension_path.primary_store is not base_store:
        accountant.charge_layout_conversion(dimension_rows * len(fetch_columns))

    # Build phase on the dimension table.
    accountant.charge_hash_inserts("join_build", dimension_rows)
    hash_table: Dict[Any, int] = {}
    keys = dimension_values[join.right_column]
    for position in range(dimension_rows):
        hash_table.setdefault(keys[position], position)

    # Probe phase with the base table's key values.
    accountant.charge_hash_probes("join_probe", len(base_key_values))
    match_mask = np.zeros(len(base_key_values), dtype=bool)
    aligned: Dict[str, List[Any]] = {
        f"{join.table}.{name}": [] for name in needed_columns
    }
    for index, key in enumerate(base_key_values):
        position = hash_table.get(key)
        if position is None:
            for name in needed_columns:
                aligned[f"{join.table}.{name}"].append(None)
            continue
        match_mask[index] = True
        for name in needed_columns:
            aligned[f"{join.table}.{name}"].append(dimension_values[name][position])
    return JoinedColumns(match_mask=match_mask, columns=aligned)
