"""Hash joins between the query's base table and joined (dimension) tables.

The join implementation is deliberately simple — an equi hash join that builds
on the joined table and probes with the base table's key values.  Two costs
matter for the storage advisor:

* the build/probe work itself (proportional to the participating rows), and
* a **layout-conversion penalty** when the two sides live in different stores
  (the paper: keeping joined tables in the same store "saves the conversion of
  the different memory layouts and allows for faster joins").

The implementation is vectorized: when both key columns are native numpy
arrays the build/probe runs as a sort + binary search, otherwise a Python
hash table is built once and the dimension attributes are gathered with one
fancy-indexing pass per column.  Dictionary-encoded key columns
(:class:`~repro.engine.batch.EncodedColumn`) stay late-materialized: when
both sides share one dictionary the probe runs directly on the int64 code
arrays; otherwise an encoded probe side resolves each *dictionary* value
once (``|dictionary|`` value probes instead of one per row) and maps its
codes through the result.  Either way the *charged* cost is the same
hash-join build/probe work as the scalar implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine.batch import (
    BatchColumn,
    ColumnBatch,
    EncodedColumn,
    decoded_array,
)
from repro.engine.executor.access import AccessPath
from repro.engine.timing import CostAccountant
from repro.engine.types import Store
from repro.query.ast import JoinClause


@dataclass
class JoinedColumns:
    """Result of joining one dimension table against the base rows.

    ``match_mask[i]`` says whether base row *i* found a join partner; the
    aligned ``columns`` contain the dimension attributes for matching rows
    (``None`` where there is no match — callers filter by the mask).  A
    column may still be dictionary-encoded (:class:`EncodedColumn`) when the
    gather could stay on codes.
    """

    match_mask: np.ndarray
    columns: Dict[str, BatchColumn]


def _probe_positions(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> np.ndarray:
    """Position (in the build side) of each probe key; ``-1`` for no match.

    Matches the first occurrence of a duplicated build key, like the scalar
    ``dict.setdefault`` build did.
    """
    if (
        build_keys.dtype.kind in "iufb"
        and probe_keys.dtype.kind in "iufb"
        and len(build_keys)
    ):
        distinct, first_position = np.unique(build_keys, return_index=True)
        slots = np.searchsorted(distinct, probe_keys)
        slots = np.clip(slots, 0, len(distinct) - 1)
        matched = distinct[slots] == probe_keys
        return np.where(matched, first_position[slots], -1).astype(np.int64)
    hash_table: Dict[Any, int] = {}
    for position, key in enumerate(build_keys.tolist()):
        hash_table.setdefault(key, position)
    return np.fromiter(
        (hash_table.get(key, -1) for key in probe_keys.tolist()),
        dtype=np.int64,
        count=len(probe_keys),
    )


def _keyed_positions(build: BatchColumn, probe: BatchColumn) -> np.ndarray:
    """Build-side position of every probe key, exploiting dictionary codes.

    Three paths, all with identical match semantics (first build occurrence,
    ``-1`` for no match):

    * both sides encoded with the *same* dictionary object — probe the int64
      code arrays directly, no value is ever compared;
    * encoded probe side — resolve each probe-*dictionary* value against the
      build keys once and gather the per-row answer through the codes
      (``|dictionary|`` value probes instead of one per row);
    * plain arrays — value-level sort/hash probe as before.
    """
    if isinstance(probe, EncodedColumn):
        if isinstance(build, EncodedColumn) and build.dictionary is probe.dictionary:
            positions = _probe_positions(build.codes, probe.codes)
            nan_code = probe.dictionary.nan_code
            if nan_code is not None:
                # The NaN code would match itself, but NaN keys never join by
                # value (NaN != NaN), exactly like the decoded probe paths.
                positions = np.where(probe.codes == nan_code, -1, positions)
            return positions
        if len(probe.dictionary) == 0:
            return np.full(len(probe), -1, dtype=np.int64)
        dictionary_positions = _probe_positions(
            decoded_array(build), probe.dictionary.values_array
        )
        return dictionary_positions[probe.codes]
    return _probe_positions(decoded_array(build), probe)


def _gather_column(
    values: BatchColumn, positions: np.ndarray, match_mask: np.ndarray
) -> BatchColumn:
    """Gather a dimension column at *positions*, staying encoded if possible.

    An encoded column with a full match gathers codes only; a partial match
    needs ``None`` fill values, which forces the decoded object-array path.
    """
    if isinstance(values, EncodedColumn):
        if match_mask.all():
            return values.take(positions)
        values = values.values
    return _gather(values, positions, match_mask)


def _gather(values: np.ndarray, positions: np.ndarray, match_mask: np.ndarray) -> np.ndarray:
    """Gather *values* at *positions*, filling ``None`` where there is no match."""
    if match_mask.all():
        return values[positions]
    safe = np.where(match_mask, positions, 0)
    gathered = values[safe] if len(values) else np.empty(len(positions), dtype=object)
    if gathered.dtype != object:
        gathered = gathered.astype(object)
    else:
        gathered = gathered.copy()
    gathered[~match_mask] = None
    return gathered


def join_dimension(
    base_key_values: Union[np.ndarray, EncodedColumn, Sequence[Any]],
    join: JoinClause,
    dimension_path: AccessPath,
    needed_columns: Sequence[str],
    base_store: Store,
    accountant: CostAccountant,
) -> JoinedColumns:
    """Join the base table's key values against *dimension_path*.

    ``needed_columns`` are the dimension attributes the query references
    (group-by columns, aggregated columns); the join key column is fetched in
    addition.  The returned column arrays are aligned with
    ``base_key_values`` and keyed by the qualified ``"table.column"`` name.
    """
    fetch_columns = [join.right_column] + [
        name for name in needed_columns if name != join.right_column
    ]
    dimension_batch = dimension_path.collect_batch(fetch_columns, None, accountant)
    dimension_rows = dimension_batch.num_rows

    # Cross-store joins pay for converting the (smaller) build side's layout.
    if dimension_path.primary_store is not base_store:
        accountant.charge_layout_conversion(dimension_rows * len(fetch_columns))

    # Build phase on the dimension table, probe phase with the base keys.
    accountant.charge_hash_inserts("join_build", dimension_rows)
    probe_keys: BatchColumn = (
        base_key_values
        if isinstance(base_key_values, (np.ndarray, EncodedColumn))
        else np.asarray(base_key_values, dtype=object)
    )
    accountant.charge_hash_probes("join_probe", len(probe_keys))
    positions = _keyed_positions(dimension_batch.raw(join.right_column), probe_keys)
    match_mask = positions >= 0

    aligned: Dict[str, BatchColumn] = {}
    for name in needed_columns:
        aligned[f"{join.table}.{name}"] = _gather_column(
            dimension_batch.raw(name), positions, match_mask
        )
    return JoinedColumns(match_mask=match_mask, columns=aligned)
