"""Query execution: access paths, operators, joins and the executor.

Architecture note — the columnar batch pipeline
===============================================

Read queries flow through the executor as **columnar batches**
(:class:`~repro.engine.batch.ColumnBatch`: aligned numpy value arrays, one
per column), not as lists of row dicts:

* the storage backends decode straight into arrays — the column store with
  one fancy-indexing gather over its dictionary (``values[codes]``), the row
  store from cached per-column views of its tuples;
* access paths (:class:`SimpleAccessPath`, :class:`PartitionedAccessPath`)
  expose :meth:`~AccessPath.collect_batch`, concatenating partition segments
  columnarly;
* the operators consume batches: aggregations run as numpy reductions with an
  ``np.unique``-factorized group-by, hash joins probe on key arrays and
  gather dimension attributes with one fancy-indexing pass per column, and
  complex predicates are evaluated vectorially over value arrays
  (:func:`~repro.engine.batch.vectorized_value_mask`);
* row dicts are materialised **lazily**, only at the :class:`QueryResult`
  boundary (``fetch_rows`` / ``ColumnBatch.to_rows``) — an aggregation over a
  100k-row table never builds a single intermediate row dict.

The batch pipeline is purely a wall-clock optimisation of the simulator:
every :class:`~repro.engine.timing.CostAccountant` charge is identical to the
scalar row-at-a-time pipeline (same components, same amounts, same order), so
the advisor's estimated-vs-measured calibration is unaffected.  Value mixes
numpy cannot express (NULLs in object columns, unsortable group keys) fall
back to the scalar implementations, which remain the semantic reference.
"""

from repro.engine.batch import ColumnBatch
from repro.engine.executor.access import AccessPath, SimpleAccessPath
from repro.engine.executor.executor import QueryExecutor, QueryResult
from repro.engine.executor.rewrite import PartitionedAccessPath, access_path_for

__all__ = [
    "AccessPath",
    "ColumnBatch",
    "PartitionedAccessPath",
    "QueryExecutor",
    "QueryResult",
    "SimpleAccessPath",
    "access_path_for",
]
