"""Query execution: access paths, operators, joins and the executor."""

from repro.engine.executor.access import AccessPath, SimpleAccessPath
from repro.engine.executor.executor import QueryExecutor, QueryResult
from repro.engine.executor.rewrite import PartitionedAccessPath, access_path_for

__all__ = [
    "AccessPath",
    "PartitionedAccessPath",
    "QueryExecutor",
    "QueryResult",
    "SimpleAccessPath",
    "access_path_for",
]
