"""Query execution: access paths, operators, joins and the executor.

Architecture note — the columnar batch pipeline
===============================================

Read queries flow through the executor as **columnar batches**
(:class:`~repro.engine.batch.ColumnBatch`), not as lists of row dicts.  A
batch column is either a plain numpy value array or — for dictionary-
compressed column-store data — an :class:`~repro.engine.batch.EncodedColumn`
``(codes, dictionary)`` pair carried through the pipeline undecoded (**late
materialization**):

* the row store serves cached per-column views of its tuples; the column
  store hands out its int64 code arrays with the sorted dictionary attached
  — no fancy-indexing decode gather on the scan path;
* access paths (:class:`SimpleAccessPath`, :class:`PartitionedAccessPath`)
  expose :meth:`~AccessPath.collect_batch`, concatenating partition segments
  columnarly (segments sharing a dictionary concatenate codes; mixed
  representations decode first);
* the operators consume batches in whichever representation they carry:
  group-bys use an encoded key's codes directly as dense group ids (one
  ``bincount``, first-occurrence renumbering, no ``np.unique`` re-sort of
  decoded strings) and decode one key value per *group*; hash joins probe
  int64 code arrays when both sides share a dictionary, resolve each
  probe-dictionary value once otherwise, and fall back to value arrays for
  plain columns; encoded aggregate *inputs* reduce in the dictionary domain
  (``SUM`` as ``bincount(codes) · decoded(dictionary)``, ``MIN``/``MAX``
  over the codes) — O(|dictionary|) instead of O(rows) decoded values;
* filtered column-store scans run in the **code domain** end-to-end:
  :func:`~repro.engine.column_store.compile_code_mask` translates
  ``EQ/NE/LT/LE/GT/GE``, ``BETWEEN``, ``IN``, ``IS NULL`` and any
  ``AND``/``OR``/``NOT`` combination into code intervals and memberships via
  ``bisect`` on the sorted dictionary (NULL's reserved code 0 and NaN's
  last-code convention respected), evaluated as vectorized int64
  comparisons — no value decodes; predicates outside the compiler's reach
  take the decode-and-compare fallback
  (:func:`~repro.engine.batch.vectorized_value_mask`);
* values materialise only at the :class:`QueryResult` boundary
  (``fetch_rows`` / ``ColumnBatch.to_rows``) — an aggregation over a
  100k-row table never builds an intermediate row dict and never decodes its
  group-key column.

Zone maps and plan-driven scans
===============================

Every storage backend keeps per-column **zone synopses** (min/max,
null count, NaN presence — :mod:`repro.engine.zonemap`), maintained under
DML via zone epochs: inserts keep them cheap incrementally (the row store
widens its cached zones with just the appended values; the column store's
bounds come from the insert-maintained dictionary and a running per-column
null count), while updates and deletes invalidate, and the next consult
rebuilds — re-tightening a range deletes shrank.  When the executor resolves a query's access paths it
derives a :class:`~repro.engine.zonemap.ScanDecision` per filtered base
table: partitions whose zones prove the predicate cannot match are skipped
before a single code or tuple is touched (the hot and main portions of a
:class:`PartitionedAccessPath` prune independently).  The session planner
embeds the *same* decision object in the physical plan, execution re-derives
it only when its zone-epoch token goes stale (or a bound parameter refines a
template), and ``EXPLAIN ANALYZE`` reports the per-table partitions
scanned/skipped counters — plan and execution provably coincide.  Skipped
partitions charge nothing ("actuals reflect rows actually touched"); the
cost model mirrors the pruning on the estimate side through the catalog's
min/max statistics.

Aggregate pushdown
==================

Aggregation executes as far down the storage stack as the query allows
(:mod:`repro.engine.executor.agg_pushdown`), in one of four tiers chosen at
*plan* time from the query shape and the zone synopses, recorded as an
:class:`~repro.engine.executor.agg_pushdown.AggregateStrategy` in the
physical plan (re-derived on stale zone-epoch tokens, exactly like a
``ScanDecision``) and reported by ``EXPLAIN [ANALYZE]``:

* **zero-scan** — ungrouped ``COUNT(*)``/``COUNT(col)``/``MIN``/``MAX``
  whose predicate is absent or provably all-true/all-false per partition are
  answered from the zone synopses and row/null counts; nothing is decoded
  and nothing is reduced (the scan's charges are still made — see below);
* **partition-partial** — partitioned tables aggregate each partition
  independently and merge the per-partition states associatively (``AVG``
  travels as ``(sum, count)``): zone-pruned partitions contribute nothing
  and partition batches are never concatenated, so the main portion's codes
  stay encoded next to a populated hot partition;
* **code-domain** — unpartitioned column-store aggregation on dictionary
  codes (the batch-pipeline kernels above);
* **operator** — the generic reference: joins, row-store bases, undecidable
  predicates, and everything under ``aggregate_pushdown_disabled()``.

UPDATE/DELETE predicate scans reuse the same ``ScanDecision`` machinery: a
provably-empty DML scan is skipped with its charges *replayed*
(``charge_filter_scan``), keeping write-path accounting identical to the
seed.

The batch pipeline is purely a wall-clock optimisation of the simulator:
every :class:`~repro.engine.timing.CostAccountant` charge is identical to the
scalar row-at-a-time pipeline (same components, same amounts, same order) —
including the per-value decode charges of scans whose decode never physically
happens — so the advisor's estimated-vs-measured calibration is unaffected.
Value mixes numpy cannot express (NULLs in object columns, unsortable or
NaN group keys) fall back to the scalar implementations, which remain the
semantic reference; the cross-store differential fuzz suite
(``tests/engine/test_differential_fuzz.py``) pins the equivalence.
"""

from repro.engine.batch import ColumnBatch, EncodedColumn
from repro.engine.executor.access import AccessPath, SimpleAccessPath
from repro.engine.executor.executor import QueryExecutor, QueryResult
from repro.engine.executor.rewrite import PartitionedAccessPath, access_path_for

__all__ = [
    "AccessPath",
    "ColumnBatch",
    "EncodedColumn",
    "PartitionedAccessPath",
    "QueryExecutor",
    "QueryResult",
    "SimpleAccessPath",
    "access_path_for",
]
