"""Columnar batches: the vectorized interchange format of the read pipeline.

A :class:`ColumnBatch` is a set of aligned columns plus optional null masks.
Each column is either

* a plain numpy **value array**, or
* an :class:`EncodedColumn` — a ``(codes, dictionary)`` pair carried straight
  from the column store's dictionary encoding (**late materialisation**).

The codes-vs-values contract: producers hand the executor whichever
representation they already have (the column store its int64 code arrays, the
row store its cached value arrays); operators work on the representation they
receive — group-by factorizes dictionary codes in O(n) without decoding, hash
joins probe on code arrays when both sides share a dictionary, and filtered
column-store scans are compiled to **code-domain** masks in the storage
layer (:func:`repro.engine.column_store.compile_code_mask`: value predicates
become code intervals/memberships via ``bisect`` on the sorted dictionary,
zone maps skip partitions the predicate provably cannot match) — and the
dictionary is consulted only for the values that actually reach the result:
group keys decode once per *group*, and full decodes happen only at the
``QueryResult`` boundary (:meth:`ColumnBatch.to_rows` / ``fetch_rows``).
Consumers that need values call :meth:`ColumnBatch.column` (decodes encoded
columns, one fancy-indexing gather, cached); consumers that can exploit
codes call :meth:`ColumnBatch.raw` and check for :class:`EncodedColumn`.
Row dicts are materialised lazily, only when a result actually needs rows.

NULL handling is dictionary-aware end-to-end: a dictionary holding NULL
reserves code 0 for it (:mod:`repro.engine.compression`), so NULL rows
travel through encoded columns, factorize into their own group, and are
excluded from (or included in, for ``IS NULL``/``IN (… NULL)``) code-domain
predicate masks exactly as the scalar evaluator dictates.

The module also hosts :func:`vectorized_value_mask`, the value-level
vectorized predicate evaluator shared by the row store's full scan and the
column store's decode-and-compare fallback (also reachable via
``code_domain_disabled()`` as the differential reference path).  It mirrors
the row-at-a-time semantics of :mod:`repro.query.predicates` exactly
(``NULL`` never matches a comparison, ``IS NULL`` matches only ``None``);
predicates it cannot express vectorially return ``None`` and the caller
falls back to the scalar loop.

Wall-clock optimisation only: producing or consuming batches never changes
what a query costs — all :class:`~repro.engine.timing.CostAccountant` charges
are made by the storage backends and operators exactly as in the scalar
pipeline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.query.predicates import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = [
    "ColumnBatch",
    "EncodedColumn",
    "decoded_array",
    "evaluate_predicate_mask",
    "null_mask_of",
    "take_column",
    "values_to_array",
    "vectorized_value_mask",
]


def values_to_array(values: Sequence[Any]) -> np.ndarray:
    """Convert a Python value sequence to the best-fitting numpy array.

    Numeric and string columns get native dtypes (vectorized reductions and
    comparisons); anything numpy cannot represent natively — ``None`` mixed
    into a column, dates, mixed types — falls back to an object array, which
    still supports elementwise comparisons and fancy-indexed gathers.
    """
    if isinstance(values, np.ndarray):
        return values
    try:
        array = np.asarray(values)
    except (TypeError, ValueError, OverflowError):
        return np.asarray(values, dtype=object)
    if array.ndim == 1:
        if array.dtype.kind in "Oiufb":
            return array
        if array.dtype.kind == "U" and array.tolist() == list(values):
            # The round trip guards numpy's fixed-width 'U' dtype silently
            # truncating trailing NUL characters ('0\x00' -> '0'); strings
            # that don't survive it stay Python objects.
            return array
    # Datetimes, timedeltas, ragged inputs etc.: keep the Python objects.
    result = np.empty(len(values), dtype=object)
    result[:] = values
    return result


def null_mask_of(array: np.ndarray) -> Optional[np.ndarray]:
    """Boolean mask of NULL (``None``) entries, or ``None`` when there are none.

    Only object arrays can hold ``None``; native arrays never have nulls.
    """
    if array.dtype != object:
        return None
    mask = np.fromiter((value is None for value in array), dtype=bool, count=len(array))
    return mask if mask.any() else None


class EncodedColumn:
    """A dictionary-compressed column travelling through the batch pipeline.

    Holds the int64 ``codes`` array together with the (sorted)
    ``dictionary`` that decodes them — the column store's native
    representation, carried through the executor unchanged so that group-by,
    joins and row selection can operate on the compact codes.  ``values``
    decodes on first use (one fancy-indexing gather) and caches the result;
    operators that only need codes never trigger it.
    """

    __slots__ = ("codes", "dictionary", "_values")

    def __init__(self, codes: np.ndarray, dictionary) -> None:
        self.codes = codes
        self.dictionary = dictionary
        self._values: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def values(self) -> np.ndarray:
        """The decoded value array (gathered lazily, cached)."""
        if self._values is None:
            self._values = self.dictionary.decode_array(self.codes)
        return self._values

    def tolist(self) -> List[Any]:
        return self.values.tolist()

    def take(self, selector: np.ndarray) -> "EncodedColumn":
        """Row selection without decoding: gather the codes only."""
        return EncodedColumn(self.codes[selector], self.dictionary)

    def factorize(self) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(distinct_codes, inverse)`` in O(n) — no value sort.

        Because the dictionary is sorted, the codes already carry the value
        order: marking the used codes and compacting them with a running sum
        yields exactly what ``np.unique(values, return_inverse=True)`` would,
        without decoding a single value.
        """
        codes = self.codes
        used = np.zeros(max(len(self.dictionary), 1), dtype=bool)
        used[codes] = True
        remap = np.cumsum(used) - 1
        return np.nonzero(used)[0], remap[codes]


BatchColumn = Union[np.ndarray, EncodedColumn]


def decoded_array(values: BatchColumn) -> np.ndarray:
    """The value array of a batch column (decoding if it is encoded)."""
    return values.values if isinstance(values, EncodedColumn) else values


def take_column(values: BatchColumn, selector: np.ndarray) -> BatchColumn:
    """Row-select a batch column, staying encoded when it is encoded."""
    if isinstance(values, EncodedColumn):
        return values.take(selector)
    return values[selector]


class ColumnBatch:
    """Aligned per-column arrays — the unit of the vectorized pipeline.

    Columns are value arrays or :class:`EncodedColumn` ``(codes, dictionary)``
    pairs; see the module docstring for the codes-vs-values contract.
    """

    __slots__ = ("_columns", "num_rows")

    def __init__(self, columns: Dict[str, BatchColumn], num_rows: Optional[int] = None):
        self._columns = columns
        if num_rows is None:
            num_rows = len(next(iter(columns.values()))) if columns else 0
        self.num_rows = num_rows

    @classmethod
    def from_lists(cls, columns: Mapping[str, Sequence[Any]]) -> "ColumnBatch":
        return cls({name: values_to_array(values) for name, values in columns.items()})

    # -- access -----------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        """The value array of *name* (decoding an encoded column)."""
        return decoded_array(self._columns[name])

    def raw(self, name: str) -> BatchColumn:
        """The column as carried: a value array or an :class:`EncodedColumn`."""
        return self._columns[name]

    def encoded(self, name: str) -> Optional[EncodedColumn]:
        """The column's ``(codes, dictionary)`` pair, or ``None`` if plain."""
        values = self._columns[name]
        return values if isinstance(values, EncodedColumn) else None

    def column_list(self, name: str) -> List[Any]:
        return self.column(name).tolist()

    def arrays(self) -> Dict[str, np.ndarray]:
        """All columns as value arrays (decodes encoded columns)."""
        return {name: decoded_array(values) for name, values in self._columns.items()}

    def raw_columns(self) -> Dict[str, BatchColumn]:
        """All columns as carried — no decode."""
        return dict(self._columns)

    def null_mask(self, name: str) -> Optional[np.ndarray]:
        return null_mask_of(self.column(name))

    # -- construction / transformation -------------------------------------------

    def take(self, selector: np.ndarray) -> "ColumnBatch":
        """Select rows by boolean mask or index array (numpy semantics).

        Encoded columns stay encoded: only their codes are gathered.
        """
        taken = {
            name: take_column(values, selector)
            for name, values in self._columns.items()
        }
        return ColumnBatch(taken)

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Stack batches with identical column sets (e.g. partition segments).

        Encoded parts sharing one dictionary object concatenate codes;
        mixed representations (different partitions have independent
        dictionaries) decode first, exactly like the pre-late-materialisation
        pipeline did.
        """
        if not batches:
            return cls({})
        total_rows = sum(batch.num_rows for batch in batches)
        names = batches[0].column_names
        columns: Dict[str, BatchColumn] = {}
        for name in names:
            parts = [batch.raw(name) for batch in batches if batch.num_rows]
            if not parts:
                columns[name] = batches[0].raw(name)
            elif len(parts) == 1:
                columns[name] = parts[0]
            elif all(
                isinstance(part, EncodedColumn)
                and part.dictionary is parts[0].dictionary
                for part in parts
            ):
                columns[name] = EncodedColumn(
                    np.concatenate([part.codes for part in parts]),
                    parts[0].dictionary,
                )
            else:
                arrays = [decoded_array(part) for part in parts]
                if any(array.dtype == object for array in arrays):
                    arrays = [array.astype(object) for array in arrays]
                columns[name] = np.concatenate(arrays)
        return cls(columns, num_rows=total_rows)

    # -- lazy row materialisation ---------------------------------------------------

    def to_rows(self, names: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Materialise row dicts — the ``QueryResult`` boundary only."""
        selected = list(names) if names is not None else self.column_names
        lists = [self.column(name).tolist() for name in selected]
        return [dict(zip(selected, values)) for values in zip(*lists)] if lists else []


# -- vectorized predicate evaluation over value arrays ---------------------------------


def evaluate_predicate_mask(
    predicate: Predicate, arrays: Mapping[str, np.ndarray], num_rows: int
) -> np.ndarray:
    """Boolean mask of *predicate* over aligned value *arrays* — always.

    Vectorized when :func:`vectorized_value_mask` supports the predicate,
    otherwise the scalar ``Predicate.evaluate`` loop over the referenced
    columns.  This is the one shared fallback for every store's complex-
    predicate path, so NULL and fallback semantics cannot drift between
    call sites.
    """
    mask = vectorized_value_mask(predicate, arrays, num_rows)
    if mask is not None:
        return mask
    referenced = sorted(arrays)
    lists = {name: arrays[name].tolist() for name in referenced}
    return np.fromiter(
        (
            predicate.evaluate({name: lists[name][i] for name in referenced})
            for i in range(num_rows)
        ),
        dtype=bool,
        count=num_rows,
    )


def vectorized_value_mask(
    predicate: Predicate, arrays: Mapping[str, np.ndarray], num_rows: int
) -> Optional[np.ndarray]:
    """Evaluate *predicate* over aligned value *arrays*, or ``None`` if unsupported.

    Matches :meth:`Predicate.evaluate` row-at-a-time semantics: comparisons
    against ``NULL`` (on either side) are false, ``IS NULL`` is true exactly
    for ``None``.  Type errors from exotic value mixes abort vectorisation
    (returning ``None``) rather than guessing.
    """
    try:
        return _value_mask(predicate, arrays, num_rows, _NullMaskCache())
    except TypeError:
        return None


class _NullMaskCache:
    """Per-evaluation memo of each column's null mask.

    The null mask of an object column is an O(n) Python-level pass; a
    predicate tree referencing the same nullable column several times (e.g.
    a BETWEEN, or an AND of comparisons) must not repeat it.
    """

    __slots__ = ("_masks",)

    def __init__(self) -> None:
        self._masks: Dict[int, Optional[np.ndarray]] = {}

    def get(self, array: np.ndarray) -> Optional[np.ndarray]:
        key = id(array)
        if key not in self._masks:
            self._masks[key] = null_mask_of(array)
        return self._masks[key]


def _value_mask(
    predicate: Predicate,
    arrays: Mapping[str, np.ndarray],
    num_rows: int,
    nulls: _NullMaskCache,
) -> Optional[np.ndarray]:
    if isinstance(predicate, TruePredicate):
        return np.ones(num_rows, dtype=bool)
    if isinstance(predicate, And):
        return _combine(predicate.predicates, arrays, num_rows, nulls, np.logical_and)
    if isinstance(predicate, Or):
        return _combine(predicate.predicates, arrays, num_rows, nulls, np.logical_or)
    if isinstance(predicate, Not):
        mask = _value_mask(predicate.predicate, arrays, num_rows, nulls)
        return None if mask is None else ~mask
    if isinstance(predicate, IsNull):
        array = arrays.get(predicate.column)
        if array is None:
            return None
        mask = nulls.get(array)
        return mask if mask is not None else np.zeros(len(array), dtype=bool)
    if isinstance(predicate, Comparison):
        array = arrays.get(predicate.column)
        if array is None:
            return None
        return _comparison_mask(array, predicate.op, predicate.value, nulls)
    if isinstance(predicate, Between):
        array = arrays.get(predicate.column)
        if array is None:
            return None
        # Mirror the scalar evaluator's *exclusion* tests exactly: it rejects
        # a row when ``value < low`` (or ``> high``), so NaN — for which every
        # comparison is False — passes, as it does row-at-a-time.
        mask = np.ones(len(array), dtype=bool)
        null_mask = nulls.get(array)
        if null_mask is not None:
            mask &= ~null_mask
        if predicate.low is not None:
            op = CompareOp.LT if predicate.include_low else CompareOp.LE
            mask &= ~_comparison_mask(array, op, predicate.low, nulls)
        if predicate.high is not None:
            op = CompareOp.GT if predicate.include_high else CompareOp.GE
            mask &= ~_comparison_mask(array, op, predicate.high, nulls)
        return mask
    if isinstance(predicate, InList):
        array = arrays.get(predicate.column)
        if array is None:
            return None
        mask = np.zeros(len(array), dtype=bool)
        for value in predicate.values:
            if value is None:
                null_mask = nulls.get(array)
                if null_mask is not None:
                    mask |= null_mask
            else:
                _reject_nul_string_literal(value)
                # A NaN member matches nothing (IN is chained equality and
                # ``NaN == NaN`` is false) — ``array == nan`` is all-False,
                # exactly the scalar reference's answer.
                mask |= np.asarray(array == value, dtype=bool)
        return mask
    return None


def _reject_nul_string_literal(value: Any) -> None:
    """Abort vectorization for string literals containing NUL characters.

    numpy coerces comparison literals to its fixed-width string dtype, which
    silently drops trailing ``\\x00`` — such comparisons must take the scalar
    path (the raised TypeError triggers the fallback).
    """
    if isinstance(value, str) and "\x00" in value:
        raise TypeError("NUL-containing string literal cannot be vectorized")


def _combine(
    predicates: Iterable[Predicate],
    arrays: Mapping[str, np.ndarray],
    num_rows: int,
    nulls: _NullMaskCache,
    combiner,
) -> Optional[np.ndarray]:
    combined: Optional[np.ndarray] = None
    for child in predicates:
        mask = _value_mask(child, arrays, num_rows, nulls)
        if mask is None:
            return None
        combined = mask if combined is None else combiner(combined, mask)
    return combined


def _comparison_mask(
    array: np.ndarray, op: CompareOp, value: Any, nulls: _NullMaskCache
) -> np.ndarray:
    if value is None:
        # ``column <op> NULL`` never matches, regardless of the operator.
        return np.zeros(len(array), dtype=bool)
    null_mask = nulls.get(array)
    if null_mask is not None:
        # Ordered comparisons would raise on None; compare non-nulls only.
        mask = np.zeros(len(array), dtype=bool)
        keep = ~null_mask
        mask[keep] = _compare(array[keep], op, value)
        return mask
    return _compare(array, op, value)


def _compare(array: np.ndarray, op: CompareOp, value: Any) -> np.ndarray:
    _reject_nul_string_literal(value)
    if op is CompareOp.EQ:
        result = array == value
    elif op is CompareOp.NE:
        result = array != value
    elif op is CompareOp.LT:
        result = array < value
    elif op is CompareOp.LE:
        result = array <= value
    elif op is CompareOp.GT:
        result = array > value
    else:
        result = array >= value
    result = np.asarray(result)
    if result.dtype != bool:
        result = result.astype(bool)
    if result.shape != array.shape:
        # A scalar result means numpy refused elementwise comparison.
        raise TypeError("comparison did not vectorize")
    return result
