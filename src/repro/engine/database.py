"""HybridDatabase: the façade of the hybrid-store execution engine.

A :class:`HybridDatabase` owns the system catalog, the physical table objects
(plain :class:`~repro.engine.table.StoredTable` or
:class:`~repro.engine.partitioning.PartitionedTable`), the device/timing model
and the query executor.  It offers:

* DDL — creating and dropping tables, moving a table between stores, applying
  or removing a partitioning (the operations the storage advisor recommends),
* DML and queries through :meth:`execute`, with per-query simulated costs,
* workload execution with aggregated runtime statistics, and
* statistics refresh for the system catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.config import DeviceModelConfig
from repro.engine.catalog import Catalog
from repro.engine.column_store import ColumnStoreTable
from repro.engine.executor.executor import QueryExecutor, QueryResult
from repro.engine.matview import MaterializedView, RefreshResult
from repro.engine.partitioning import PartitionedTable, TablePartitioning
from repro.engine.schema import TableSchema
from repro.engine.statistics import TableStatistics, compute_table_statistics
from repro.engine.table import StoredTable
from repro.engine.timing import CostAccountant, CostBreakdown, DeviceModel
from repro.engine.types import Store
from repro.errors import CatalogError
from repro.query.ast import Query, QueryType
from repro.query.workload import Workload
from repro.testing.faults import CrashError

TableObject = Union[StoredTable, PartitionedTable]

#: Query types the write-ahead log records (reads are never logged).
_DML_TYPES = (QueryType.INSERT, QueryType.UPDATE, QueryType.DELETE)

#: Signature of execution listeners (used by the online workload monitor).
ExecutionListener = Callable[[Query, QueryResult], None]


@dataclass
class WorkloadRunResult:
    """Aggregated result of running a workload against the database."""

    workload_name: str
    query_runtimes_ms: List[float] = field(default_factory=list)
    runtime_by_type_ms: Dict[QueryType, float] = field(default_factory=dict)
    queries_by_type: Dict[QueryType, int] = field(default_factory=dict)

    @property
    def total_runtime_ms(self) -> float:
        return sum(self.query_runtimes_ms)

    @property
    def total_runtime_s(self) -> float:
        return self.total_runtime_ms / 1000.0

    @property
    def num_queries(self) -> int:
        return len(self.query_runtimes_ms)

    @property
    def mean_runtime_ms(self) -> float:
        if not self.query_runtimes_ms:
            return 0.0
        return self.total_runtime_ms / len(self.query_runtimes_ms)

    def record(self, query: Query, result: QueryResult) -> None:
        runtime = result.runtime_ms
        self.query_runtimes_ms.append(runtime)
        query_type = query.query_type
        self.runtime_by_type_ms[query_type] = (
            self.runtime_by_type_ms.get(query_type, 0.0) + runtime
        )
        self.queries_by_type[query_type] = self.queries_by_type.get(query_type, 0) + 1


class HybridDatabase:
    """An in-memory hybrid-store database with simulated query costs."""

    def __init__(self, device_config: Optional[DeviceModelConfig] = None) -> None:
        self.catalog = Catalog()
        self.device = DeviceModel(device_config)
        self._tables: Dict[str, TableObject] = {}
        self._executor = QueryExecutor(self, self.device)
        self._listeners: List[ExecutionListener] = []
        # Per-table layout/statistics version, bumped by every DDL operation,
        # store move, (re)partitioning and statistics refresh.  The session
        # plan cache keys plans by these versions, so any such change makes
        # cached plans unreachable (= invalidates them) without the engine
        # knowing about plan caches.  Plain DML does not bump versions: it
        # changes data, not layout or recorded statistics.
        self._table_versions: Dict[str, int] = {}
        self._version_counter = 0
        # Optional write-ahead log (see repro.engine.wal).  When attached,
        # every DDL operation, bulk load and DML statement is logged after it
        # takes effect, so the log is a redo log of committed statements.
        self.wal = None
        # Delta merge threshold applied to column-store backends created by
        # this database (None = the backend's class default).  Configured
        # through DurabilityConfig at the session layer.
        self.delta_merge_threshold: Optional[int] = None
        # Materialized-view state (definitions live in the catalog; the
        # materialized partials/rows live here, next to the table objects).
        # Views are derived state and deliberately NOT WAL-logged: recovery
        # rebuilds base tables, and the first refresh after recovery
        # rematerializes a recreated view from them.
        self._views: Dict[str, "MaterializedView"] = {}

    # -- durability ----------------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Attach a :class:`~repro.engine.wal.WriteAheadLog` to this database."""
        self.wal = wal

    def checkpoint(self) -> int:
        """Snapshot the database into the attached WAL and reset the log."""
        if self.wal is None:
            raise CatalogError("no write-ahead log attached to this database")
        return self.wal.checkpoint(self)

    def snapshot_state(self) -> List[Dict[str, Any]]:
        """Picklable snapshot of every table plus its catalog entry."""
        state = []
        for name in self.table_names():
            entry = self.catalog.entry(name)
            state.append(
                {
                    "schema": entry.schema,
                    "store": entry.store,
                    "partitioning": entry.partitioning,
                    "table": self._tables[name],
                }
            )
        return state

    def restore_state(self, state: List[Dict[str, Any]]) -> None:
        """Load a :meth:`snapshot_state` snapshot into this (fresh) database."""
        for item in state:
            schema = item["schema"]
            self.catalog.register_table(schema, item["store"])
            if item["partitioning"] is not None:
                self.catalog.set_partitioning(schema.name, item["partitioning"])
            self._tables[schema.name] = item["table"]
            self.refresh_statistics(schema.name)

    def _apply_merge_threshold(self, name: str) -> None:
        """Propagate the configured merge threshold to a table's backends."""
        if self.delta_merge_threshold is None:
            return
        table = self._tables.get(name)
        if table is None:
            return
        parts = table.all_parts if isinstance(table, PartitionedTable) else [table]
        for part in parts:
            if isinstance(part.backend, ColumnStoreTable):
                part.backend.merge_threshold = self.delta_merge_threshold

    def merge_deltas(self, name: Optional[str] = None) -> int:
        """Merge the column-store deltas of one table (or all tables).

        A merge that moved rows changes the physical state plans and
        estimates were costed against (code bytes, dictionary sizes, delta
        length), so it bumps the table version like DDL does; a no-op merge
        leaves cached plans valid.
        """
        names = [name] if name is not None else self.table_names()
        total = 0
        for table_name in names:
            merged = self.table_object(table_name).merge_delta()
            if merged:
                self._bump_version(table_name)
            total += merged
        return total

    def snapshot(self, name: str):
        """A consistent read view of *name* as of now (snapshot isolation)."""
        return self.table_object(name).snapshot()

    def _log_dml(self, query: Query) -> None:
        if self.wal is not None and query.query_type in _DML_TYPES:
            self.wal.log_dml(query)

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, schema: TableSchema, store: Store = Store.ROW) -> StoredTable:
        """Create an empty table in *store* and register it in the catalog."""
        entry = self.catalog.register_table(schema, store)
        table = StoredTable(schema, store)
        self._tables[schema.name] = table
        entry.statistics = compute_table_statistics(table)
        self._apply_merge_threshold(schema.name)
        self._bump_version(schema.name)
        if self.wal is not None:
            self.wal.log_create_table(schema, store)
        return table

    def drop_table(self, name: str) -> None:
        # Dependent materialized views cascade: their state derives entirely
        # from the dropped data.
        for entry in self.catalog.views_on(name):
            self.drop_view(entry.name)
        self.catalog.drop_table(name)
        del self._tables[name]
        # The version entry stays (and bumps): a plan cached against the
        # dropped table must not resurface if a same-named table reappears.
        self._bump_version(name)
        if self.wal is not None:
            self.wal.log_drop_table(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def table_object(self, name: str) -> TableObject:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def adopt_table(self, name: str, table_object: TableObject) -> None:
        """Replace *name*'s table object in place (integrity repair).

        The catalog entry (schema, store, partitioning) stays: the adopted
        object must hold the same committed state — e.g. a copy rebuilt by
        WAL recovery after corruption quarantined the original.  Statistics
        are recomputed and the table version bumps, so no cached plan can
        keep serving the replaced object.
        """
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._tables[name] = table_object
        self._apply_merge_threshold(name)
        self.refresh_statistics(name)

    def schema(self, name: str) -> TableSchema:
        return self.catalog.schema(name)

    def store_of(self, name: str) -> Optional[Store]:
        """The store of an unpartitioned table; ``None`` for partitioned ones."""
        entry = self.catalog.entry(name)
        if entry.is_partitioned:
            return None
        return entry.store

    # -- materialized views ---------------------------------------------------------------

    def create_view(self, name: str, query) -> MaterializedView:
        """Create and materialize a view of *query* (an aggregation).

        The defining query is registered in the catalog under its fingerprint
        — the planner's rewrite key — and the initial refresh materializes the
        state immediately, so a freshly created view is ready to serve.
        """
        view = MaterializedView(name, query)
        if not self.has_table(view.table):
            raise CatalogError(
                f"materialized view {name!r}: unknown base table {view.table!r}"
            )
        self.catalog.register_view(name, view.table, view.fingerprint, query)
        self._views[name] = view
        view.refresh(self.table_object(view.table), self.device)
        return view

    def drop_view(self, name: str) -> None:
        self.catalog.drop_view(name)
        del self._views[name]

    def view(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown materialized view {name!r}") from None

    def view_names(self) -> List[str]:
        return sorted(self._views)

    def views_on(self, table: str) -> List[MaterializedView]:
        return [self._views[entry.name] for entry in self.catalog.views_on(table)]

    def matching_view(self, query) -> Optional[MaterializedView]:
        """The view materializing exactly *query*, if one exists.

        Matches by query fingerprint — the same recurrence key the online
        monitor counts — so the planner's rewrite detection and the advisor's
        recurrence detection agree on what "the same query" means.
        """
        if getattr(query, "query_type", None) is not QueryType.AGGREGATION:
            return None
        from repro.query.fingerprint import query_fingerprint

        entry = self.catalog.view_for_fingerprint(query_fingerprint(query))
        if entry is None:
            return None
        return self._views.get(entry.name)

    def refresh_view(self, name: str) -> RefreshResult:
        """Explicitly bring one view up to date (DDL-level refresh).

        Bumps the view-catalog version: cached plans may have been built
        while the view was stale, and an explicit refresh is a user-visible
        catalog event like CREATE/DROP.  (The session's serve-time refresh
        goes through :meth:`MaterializedView.refresh` directly and does not
        bump — serving is not DDL.)
        """
        view = self.view(name)
        result = view.refresh(self.table_object(view.table), self.device)
        self.catalog.bump_view_version()
        return result

    # -- layout changes (what the advisor recommends) -----------------------------------

    def move_table(self, name: str, store: Store) -> CostBreakdown:
        """Move *name* to *store*, returning the cost of the data movement.

        If the table is currently partitioned it is first collapsed back into
        a single table.
        """
        accountant = CostAccountant(self.device)
        table = self.table_object(name)
        if isinstance(table, PartitionedTable):
            table = table.to_stored_table(store, accountant)
            self._tables[name] = table
            self.catalog.clear_partitioning(name, store)
        else:
            table.convert_to(store, accountant)
            self.catalog.set_store(name, store)
        self._apply_merge_threshold(name)
        self.refresh_statistics(name)
        if self.wal is not None:
            self.wal.log_move_table(name, store)
        return accountant.breakdown

    def apply_partitioning(
        self, name: str, partitioning: TablePartitioning
    ) -> CostBreakdown:
        """Split *name* according to *partitioning*, returning the movement cost."""
        accountant = CostAccountant(self.device)
        table = self.table_object(name)
        if isinstance(table, PartitionedTable):
            # Collapse first, then re-partition with the new layout.
            table = table.to_stored_table(Store.COLUMN, accountant)
        partitioned = PartitionedTable.from_table(table, partitioning, accountant)
        self._tables[name] = partitioned
        self.catalog.set_partitioning(name, partitioning)
        self._apply_merge_threshold(name)
        self.refresh_statistics(name)
        if self.wal is not None:
            self.wal.log_apply_partitioning(name, partitioning)
        return accountant.breakdown

    def remove_partitioning(self, name: str, store: Store) -> CostBreakdown:
        """Collapse a partitioned table back into a single-store table.

        Logged (by :meth:`move_table`) as a store move, which replays to the
        same collapsed layout.
        """
        return self.move_table(name, store)

    # -- data loading ---------------------------------------------------------------------

    def load_rows(self, name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk load rows without cost accounting (initial data population)."""
        table = self.table_object(name)
        rows = list(rows)
        if isinstance(table, PartitionedTable):
            table.load_rows(rows)
        else:
            table.bulk_load(rows)
        self.refresh_statistics(name)
        if self.wal is not None:
            self.wal.log_load_rows(name, rows)
        return len(rows)

    # -- statistics --------------------------------------------------------------------------

    def refresh_statistics(self, name: Optional[str] = None) -> Dict[str, TableStatistics]:
        """Recompute catalog statistics for one table (or all tables)."""
        names = [name] if name is not None else self.table_names()
        updated = {}
        for table_name in names:
            statistics = compute_table_statistics(self.table_object(table_name))
            self.catalog.update_statistics(table_name, statistics)
            self._bump_version(table_name)
            updated[table_name] = statistics
        return updated

    # -- layout/statistics versioning (consumed by the session plan cache) ---------------

    def _bump_version(self, name: str) -> None:
        self._version_counter += 1
        self._table_versions[name] = self._version_counter

    def table_version(self, name: str) -> int:
        """Monotonic layout/statistics version of one table.

        Bumped by DDL (create/drop), store moves, applying or removing a
        partitioning, statistics refresh (which bulk loads trigger too),
        and delta merges that moved rows (they change the physical state
        estimates were priced against).  Unknown tables report version 0,
        which a subsequent ``CREATE`` necessarily replaces with a larger
        number.
        """
        return self._table_versions.get(name, 0)

    def layout_fingerprint(self, tables: Iterable[str]) -> tuple:
        """Version tuple of *tables* — the plan-cache's invalidation key."""
        return tuple((name, self.table_version(name)) for name in tables)

    def statistics(self, name: str) -> TableStatistics:
        return self.catalog.statistics_of(name)

    # -- execution -------------------------------------------------------------------------------

    def add_execution_listener(self, listener: ExecutionListener) -> None:
        """Register a callback invoked after every executed query (online mode)."""
        self._listeners.append(listener)

    def remove_execution_listener(self, listener: ExecutionListener) -> None:
        self._listeners.remove(listener)

    def execute(self, query: Query) -> QueryResult:
        """Execute one query, returning rows and the simulated cost.

        This is the legacy single-shot entry point (parse-and-run callers,
        existing tests); :class:`repro.api.Session` drives the same executor
        through explicit :class:`~repro.api.plan.PhysicalPlan` objects and
        charges bit-identical costs.
        """
        try:
            result = self._executor.execute(query)
        except CrashError:
            # An injected crash mid-statement models the process dying: the
            # in-memory partial effects are lost, so nothing is logged.
            raise
        except Exception:
            # A failed DML statement can still have committed a deterministic
            # partial prefix (the engine's documented mid-batch contract), so
            # it is logged too; replay re-raises the same error and arrives
            # at the identical partial state.
            self._log_dml(query)
            raise
        self._log_dml(query)
        for listener in self._listeners:
            listener(query, result)
        return result

    def resolve_access_paths(self, query: Query):
        """Resolve the physical access path of every table *query* references."""
        return self._executor.resolve_paths(query)

    def execute_with_paths(self, query: Query, paths) -> QueryResult:
        """Execute *query* over pre-resolved access paths (the plan path).

        Used by the session layer to run a cached physical plan without
        re-resolving tables; execution listeners fire exactly as for
        :meth:`execute`, and DML is logged to the WAL under the same rules.
        """
        try:
            result = self._executor.execute_with_paths(query, paths)
        except CrashError:
            raise
        except Exception:
            self._log_dml(query)
            raise
        self._log_dml(query)
        for listener in self._listeners:
            listener(query, result)
        return result

    def run_workload(self, workload: Workload) -> WorkloadRunResult:
        """Execute every query of *workload* in order and aggregate runtimes."""
        run = WorkloadRunResult(workload_name=workload.name)
        for query in workload:
            result = self.execute(query)
            run.record(query, result)
        return run

    # -- reporting --------------------------------------------------------------------------------

    @property
    def memory_bytes(self) -> float:
        return sum(table.memory_bytes for table in self._tables.values())

    def describe(self) -> str:
        """Human-readable description of the current storage layout."""
        return self.catalog.describe()
