"""Table schemas for the hybrid-store engine.

A :class:`TableSchema` is an immutable description of a table: its name, its
columns (each a :class:`Column` with a :class:`~repro.engine.types.DataType`)
and its primary key.  Schemas validate incoming rows and provide the width
information the timing and cost models rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.engine.types import DataType
from repro.errors import SchemaError

#: Sentinel distinguishing "column absent from the row" from an explicit None.
_MISSING = object()


@dataclass(frozen=True)
class Column:
    """A single column of a table schema."""

    name: str
    dtype: DataType
    nullable: bool = False
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.primary_key and self.nullable:
            raise SchemaError(f"primary key column {self.name!r} cannot be nullable")

    @property
    def width_bytes(self) -> int:
        """In-memory width of one value of this column."""
        return self.dtype.width_bytes


@dataclass(frozen=True)
class TableSchema:
    """Immutable description of a table."""

    name: str
    columns: Tuple[Column, ...]
    _by_name: Dict[str, Column] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must not be empty")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        by_name: Dict[str, Column] = {}
        for column in self.columns:
            if column.name in by_name:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            by_name[column.name] = column
        object.__setattr__(self, "_by_name", by_name)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        columns: Sequence[Tuple[str, DataType]] | Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> "TableSchema":
        """Build a schema from ``(name, dtype)`` pairs or :class:`Column` objects.

        ``primary_key`` lists the column names forming the primary key; they
        are marked as primary-key columns on the resulting schema.
        """
        pk = set(primary_key or ())
        cols = []
        for item in columns:
            if isinstance(item, Column):
                column = item
                if column.name in pk and not column.primary_key:
                    column = Column(column.name, column.dtype, False, True)
            else:
                col_name, dtype = item
                column = Column(col_name, dtype, nullable=False, primary_key=col_name in pk)
            cols.append(column)
        schema = cls(name, tuple(cols))
        missing = pk - set(schema.column_names)
        if missing:
            raise SchemaError(
                f"primary key columns {sorted(missing)} not present in table {name!r}"
            )
        return schema

    # -- lookups ---------------------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def primary_key(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns if column.primary_key)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def index_of(self, name: str) -> int:
        for position, column in enumerate(self.columns):
            if column.name == name:
                return position
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    # -- derived metrics -------------------------------------------------------

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def row_width_bytes(self) -> int:
        """Uncompressed width of one full tuple, in bytes."""
        return sum(column.width_bytes for column in self.columns)

    def columns_width_bytes(self, names: Iterable[str]) -> int:
        """Uncompressed width of the listed columns, in bytes."""
        return sum(self.column(name).width_bytes for name in names)

    # -- row validation --------------------------------------------------------

    def validate_row(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and coerce *row*, returning a complete column->value dict.

        Unknown columns raise :class:`SchemaError`; missing nullable columns
        are filled with ``None``; missing non-nullable columns raise.
        """
        validated: Dict[str, Any] = {}
        found = 0
        for column in self.columns:
            name = column.name
            if name in row:
                found += 1
                value = row[name]
                if value is not None:
                    validated[name] = column.dtype.coerce(value)
                    continue
            if column.nullable:
                validated[name] = None
            else:
                raise SchemaError(
                    f"row for table {self.name!r} is missing required column "
                    f"{name!r}"
                )
        if found != len(row):
            unknown = set(row) - set(self._by_name)
            raise SchemaError(
                f"row for table {self.name!r} has unknown columns: {sorted(unknown)}"
            )
        return validated

    def validate_rows_columnar(
        self, rows: Sequence[Mapping[str, Any]]
    ) -> Dict[str, list]:
        """Validate and coerce *rows* column-at-a-time (bulk-load fast path).

        Semantically equivalent to :meth:`validate_row` per row — unknown
        columns and missing (or ``None``) non-nullable values raise
        :class:`SchemaError` — but the work runs as one pass per column with
        an exact-type fast path, and the result is column lists instead of
        row dicts, feeding columnar loads directly.
        """
        num_rows = len(rows)
        columns: Dict[str, list] = {}
        found_total = 0
        for column in self.columns:
            name = column.name
            dtype = column.dtype
            exact = dtype._exact_type
            raw = [row.get(name, _MISSING) for row in rows]
            missing = raw.count(_MISSING)
            nulls = raw.count(None)
            found_total += num_rows - missing
            if missing or nulls:
                if not column.nullable:
                    raise SchemaError(
                        f"row for table {self.name!r} is missing required column "
                        f"{name!r}"
                    )
                columns[name] = [
                    None if (value is _MISSING or value is None) else dtype.coerce(value)
                    for value in raw
                ]
            elif set(map(type, raw)) == {exact}:
                # map(type, ...) runs at C speed — the all-canonical common case
                # costs one pass and no per-value Python frame.
                columns[name] = raw
            else:
                columns[name] = [dtype.coerce(value) for value in raw]
        if found_total != sum(len(row) for row in rows):
            for row in rows:
                unknown = set(row) - set(self._by_name)
                if unknown:
                    raise SchemaError(
                        f"row for table {self.name!r} has unknown columns: "
                        f"{sorted(unknown)}"
                    )
        return columns

    def subset(self, names: Sequence[str], new_name: Optional[str] = None) -> "TableSchema":
        """Return a schema containing only the listed columns (in that order)."""
        columns = tuple(self.column(name) for name in names)
        return TableSchema(new_name or self.name, columns)
