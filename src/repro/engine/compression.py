"""Dictionary compression for the column store.

The column store of the paper's hybrid database (SAP HANA) keeps every column
dictionary-encoded: the distinct values are stored once in a sorted
dictionary, and the column itself is an array of integer codes.  Two
consequences matter for the storage advisor:

* aggregation scans touch far fewer bytes than a row-store scan would (the
  paper's ``f_compression`` adjustment), and
* the dictionary acts as an *implicit index* for point and range predicates
  (Section 3.1, point/range queries on the column store).

This module implements the dictionary encoding and the compression-rate
statistic consumed by the cost model.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.types import DataType


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and value != value


def code_width_bytes(num_distinct: int) -> int:
    """Width in bytes of one dictionary code for ``num_distinct`` values.

    Codes are bit-packed in real systems; we round to the next whole byte,
    which preserves the qualitative dependence of scan cost on the number of
    distinct values.
    """
    if num_distinct <= 1:
        return 1
    bits = int(np.ceil(np.log2(num_distinct)))
    return max(1, (bits + 7) // 8)


class ColumnDictionary:
    """Sorted dictionary of the distinct values of one column.

    Because the values are kept sorted, the value→code mapping *is* a binary
    search — no separate hash map has to be maintained (inserting a value
    mid-dictionary would otherwise re-number every larger value's hash-map
    entry one by one).
    """

    def __init__(self, dtype: DataType) -> None:
        self.dtype = dtype
        self._values: List[Any] = []
        self._values_array: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[Any]:
        return tuple(self._values)

    @property
    def values_array(self) -> np.ndarray:
        """The sorted dictionary values as a numpy array (cached).

        Decoding a whole code array is one fancy-indexing gather
        (``values_array[codes]``) instead of a per-value Python loop.
        """
        if self._values_array is None:
            from repro.engine.batch import values_to_array

            self._values_array = values_to_array(self._values)
        return self._values_array

    def _invalidate(self) -> None:
        self._values_array = None

    def encode_with_insert(self, value: Any) -> Tuple[int, Optional[int]]:
        """Return ``(code, shift_position)`` for *value*, inserting it if new.

        The dictionary stays sorted, so inserting a new value shifts the codes
        of every larger value by one.  ``shift_position`` is the insertion
        position when that happened (the caller must re-map already stored
        codes ``>= shift_position``), or ``None`` if the value already existed.
        The shift itself is implicit — codes are positions in the sorted value
        list; the *cost* of dictionary maintenance is accounted for by the
        device model, not by Python runtime.
        """
        if value is None:
            # NULL cannot be ordered against other values; it only ever lives
            # in an all-NULL dictionary (as at position 0).
            if self._values:
                if self._values[0] is None:
                    return 0, None
                raise TypeError(
                    "cannot mix NULL with values in a sorted dictionary"
                )
            self._values.append(None)
            self._invalidate()
            return 0, 0
        if _is_nan(value):
            # NaN defeats bisect (every comparison is false would place it
            # first); it sorts *last* by convention, like np.unique puts it.
            code = self.nan_code
            if code is not None:
                return code, None
            if self.holds_null:
                raise TypeError(
                    "cannot mix NULL with values in a sorted dictionary"
                )
            self._values.append(value)
            self._invalidate()
            # Appended behind every existing value: no stored code shifts.
            return len(self._values) - 1, None
        position = bisect.bisect_left(self._values, value) if self._values else 0
        if position < len(self._values) and self._values[position] == value:
            return position, None
        self._values.insert(position, value)
        self._invalidate()
        return position, position

    def encode(self, value: Any) -> int:
        """Return the current code for *value*, adding it to the dictionary if new.

        Beware that inserting a new value can shift the codes of larger
        values; :class:`CompressedColumn` uses :meth:`encode_with_insert` and
        re-maps its stored codes accordingly.
        """
        code, _ = self.encode_with_insert(value)
        return code

    def encode_existing(self, value: Any) -> Optional[int]:
        """Return the code for *value* or ``None`` if it is not present."""
        if value is None:
            return 0 if (self._values and self._values[0] is None) else None
        try:
            position = bisect.bisect_left(self._values, value)
        except TypeError:
            # Literal of an incomparable type can never be in the dictionary.
            return None
        if position < len(self._values) and self._values[position] == value:
            return position
        return None

    @property
    def holds_null(self) -> bool:
        """Whether this is the all-NULL dictionary (``None`` at code 0).

        ``None`` cannot be ordered against real values, so it only ever lives
        alone in a dictionary; any comparison predicate over such a column is
        false for every row.
        """
        return bool(self._values) and self._values[0] is None

    @property
    def nan_code(self) -> Optional[int]:
        """Code of a NaN dictionary entry, or ``None``.

        ``np.unique`` (and :func:`bisect`) sort NaN after every real value, so
        if present it is the last entry of the dictionary.
        """
        if self._values:
            last = self._values[-1]
            if isinstance(last, float) and last != last:
                return len(self._values) - 1
        return None

    def decode(self, code: int) -> Any:
        return self._values[code]

    def decode_many(self, codes: Iterable[int]) -> List[Any]:
        return self.decode_array(np.fromiter(codes, dtype=np.int64)).tolist()

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Decode a code array with one fancy-indexing gather.

        Small gathers against a cold cache (typical for point/range selects
        right after a dictionary insert invalidated it) decode per value
        instead of rebuilding the whole values array.
        """
        if len(self._values) == 0:
            return np.empty(0, dtype=object)
        if self._values_array is None and len(codes) * 4 < len(self._values):
            from repro.engine.batch import values_to_array

            values = self._values
            return values_to_array([values[code] for code in codes.tolist()])
        return self.values_array[codes]

    def range_codes(self, low: Any, high: Any,
                    include_low: bool = True, include_high: bool = True) -> Tuple[int, int]:
        """Return the half-open code interval ``[lo, hi)`` of values in range.

        Because the dictionary is sorted, a value-range predicate translates
        into a code-range predicate — the "implicit index" of the column store.
        """
        if low is None:
            lo = 0
        else:
            lo = (bisect.bisect_left(self._values, low) if include_low
                  else bisect.bisect_right(self._values, low))
        if high is None:
            hi = len(self._values)
        else:
            hi = (bisect.bisect_right(self._values, high) if include_high
                  else bisect.bisect_left(self._values, high))
        return lo, hi

    def bulk_build(self, values: Sequence[Any]) -> np.ndarray:
        """Build the dictionary from *values* in one pass and return the codes."""
        from repro.engine.batch import values_to_array

        self._invalidate()
        array = values_to_array(values)
        if array.dtype != object:
            # Native values: sort, dedup and encode entirely in numpy.
            distinct, codes = np.unique(array, return_inverse=True)
            self._values = distinct.tolist()
            return codes.reshape(-1).astype(np.int64, copy=False)
        distinct = sorted(set(values))
        self._values = list(distinct)
        code_of = {v: i for i, v in enumerate(self._values)}
        return np.fromiter((code_of[v] for v in values), dtype=np.int64,
                           count=len(values))

    def bulk_codes(self, values: Sequence[Any]) -> np.ndarray:
        """Codes for *values*, all of which must already be in the dictionary."""
        from repro.engine.batch import values_to_array

        array = self.values_array
        if array.dtype != object:
            candidate = values_to_array(values)
            if candidate.dtype != object:
                return np.searchsorted(array, candidate).astype(np.int64, copy=False)
        code_of = {v: i for i, v in enumerate(self._values)}
        return np.fromiter(
            (code_of[v] for v in values), dtype=np.int64, count=len(values)
        )

    def merge_values(self, new_values: Sequence[Any]) -> Optional[np.ndarray]:
        """Insert any not-yet-present values of *new_values* in one pass.

        Returns the old-code → new-code remap array (the caller re-maps its
        stored codes), or ``None`` when the dictionary did not change.  NaN
        is kept out of the sort (it would poison Python's ``sorted``) and
        re-appended last, where :attr:`nan_code` expects it.
        """
        fresh = []
        fresh_nan = False
        for value in set(new_values):
            if _is_nan(value):
                fresh_nan = True
            elif self.encode_existing(value) is None:
                fresh.append(value)
        old_nan = self.nan_code is not None
        if not fresh and not (fresh_nan and not old_nan):
            return None
        if self.holds_null:
            # The all-NULL dictionary admits nothing orderable next to None.
            raise TypeError("cannot mix NULL with values in a sorted dictionary")
        old_values = self._values
        merged = sorted((old_values[:-1] if old_nan else old_values) + fresh)
        if old_nan:
            # Reuse the stored NaN object so the identity-based remap lookup
            # below still finds it.
            merged.append(old_values[-1])
        elif fresh_nan:
            merged.append(float("nan"))
        self._values = merged
        self._invalidate()
        code_of = {v: i for i, v in enumerate(merged)}
        return np.fromiter(
            (code_of[v] for v in old_values), dtype=np.int64, count=len(old_values)
        )

    def rebuild_from_codes(self, kept_codes: np.ndarray) -> np.ndarray:
        """Shrink the dictionary to the codes in *kept_codes* (columnar delete).

        Returns *kept_codes* re-mapped to the shrunken dictionary.  The
        surviving values keep their sort order, so the result is exactly the
        dictionary a fresh bulk build over the surviving rows would produce.
        """
        used = np.unique(kept_codes)
        self._values = [self._values[int(code)] for code in used]
        self._invalidate()
        return np.searchsorted(used, kept_codes).astype(np.int64, copy=False)


class CompressedColumn:
    """One dictionary-encoded column: a dictionary plus an array of codes."""

    GROWTH = 1024

    def __init__(self, name: str, dtype: DataType) -> None:
        self.name = name
        self.dtype = dtype
        self.dictionary = ColumnDictionary(dtype)
        self._codes = np.empty(self.GROWTH, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The code array (a view limited to the live portion)."""
        return self._codes[: self._size]

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._codes):
            return
        new_capacity = max(needed, int(len(self._codes) * 1.5) + self.GROWTH)
        grown = np.empty(new_capacity, dtype=np.int64)
        grown[: self._size] = self._codes[: self._size]
        self._codes = grown

    def _encode_maintaining_codes(self, value: Any) -> int:
        """Encode *value*, re-mapping stored codes if the dictionary shifted."""
        code, shift_position = self.dictionary.encode_with_insert(value)
        if shift_position is not None and self._size:
            live = self._codes[: self._size]
            live[live >= shift_position] += 1
        return code

    def append(self, value: Any) -> None:
        code = self._encode_maintaining_codes(value)
        self._ensure_capacity(1)
        self._codes[self._size] = code
        self._size += 1

    def extend(self, values: Sequence[Any]) -> None:
        """Append *values*, merging new distinct values in one dictionary pass.

        Bulk encoding re-sorts the dictionary at most once per batch (instead
        of once per new value) and re-maps the stored codes with a single
        vectorized gather.
        """
        values = values if isinstance(values, list) else list(values)
        if not values:
            return
        if len(values) == 1:
            self.append(values[0])
            return
        dictionary = self.dictionary
        remap = dictionary.merge_values(values)
        if remap is not None and self._size:
            live = self._codes[: self._size]
            live[:] = remap[live]
        new_codes = dictionary.bulk_codes(values)
        self._ensure_capacity(len(values))
        self._codes[self._size: self._size + len(values)] = new_codes
        self._size += len(values)

    def bulk_load(self, values: Sequence[Any]) -> None:
        """Replace the column contents with *values* (fast path for loads)."""
        codes = self.dictionary.bulk_build(values)
        self._codes = codes
        self._size = len(values)

    def load_codes(self, codes: np.ndarray) -> None:
        """Adopt a pre-encoded code array (columnar rebuild fast path)."""
        self._codes = np.ascontiguousarray(codes, dtype=np.int64)
        self._size = len(codes)

    def truncate(self, size: int) -> None:
        """Roll the live code region back to *size* rows (batch-insert abort).

        Values merged into the dictionary by the aborted batch may survive as
        unused entries; the remap applied alongside the merge kept every live
        code decoding to its original value, so the column stays consistent.
        """
        self._size = size

    def codes_at(self, positions: Optional[Sequence[int]] = None) -> np.ndarray:
        """The code array (all rows, or a position gather) — no decoding."""
        if positions is None:
            return self.codes
        return self._codes[np.asarray(positions, dtype=np.int64)]

    def value_at(self, position: int) -> Any:
        return self.dictionary.decode(int(self._codes[position]))

    def values_at(self, positions: Sequence[int]) -> List[Any]:
        codes = self._codes[np.asarray(positions, dtype=np.int64)]
        return self.dictionary.decode_array(codes).tolist()

    def values_array_at(self, positions: Optional[Sequence[int]] = None) -> np.ndarray:
        """Decoded values as a numpy array (all rows, or a position gather)."""
        if positions is None:
            codes = self.codes
        else:
            codes = self._codes[np.asarray(positions, dtype=np.int64)]
        return self.dictionary.decode_array(codes)

    def all_values(self) -> List[Any]:
        return self.dictionary.decode_array(self.codes).tolist()

    def set_value(self, position: int, value: Any) -> None:
        code = self._encode_maintaining_codes(value)
        self._codes[position] = code

    # -- statistics --------------------------------------------------------------

    @property
    def num_distinct(self) -> int:
        return len(self.dictionary)

    @property
    def raw_bytes(self) -> float:
        """Uncompressed footprint of the column."""
        return self._size * self.dtype.width_bytes

    @property
    def code_bytes(self) -> float:
        """Size of the code array alone — the bytes a sequential scan reads."""
        return self._size * code_width_bytes(self.num_distinct)

    @property
    def compressed_bytes(self) -> float:
        """Dictionary-encoded footprint: code array plus the dictionary."""
        dict_bytes = self.num_distinct * self.dtype.width_bytes
        return self.code_bytes + dict_bytes

    @property
    def compression_rate(self) -> float:
        """Compressed size relative to the raw size (lower is better).

        An empty column reports 1.0 (no compression benefit).
        """
        if self._size == 0:
            return 1.0
        return min(1.0, self.compressed_bytes / self.raw_bytes)
