"""Dictionary compression for the column store.

The column store of the paper's hybrid database (SAP HANA) keeps every column
dictionary-encoded: the distinct values are stored once in a sorted
dictionary, and the column itself is an array of integer codes.  Two
consequences matter for the storage advisor:

* aggregation scans touch far fewer bytes than a row-store scan would (the
  paper's ``f_compression`` adjustment), and
* the dictionary acts as an *implicit index* for point and range predicates
  (Section 3.1, point/range queries on the column store).

NULL handling: ``None`` cannot be ordered against real values, so it never
participates in the sort.  A dictionary holding any NULL reserves **code 0**
for it; the sorted real values occupy codes ``1..N``.  A NULL-free
dictionary uses codes ``0..N-1`` exactly as before, so the hot no-NULL path
is unchanged.  Because NULL's code is smaller than every value code, the
code order of the value codes still mirrors the value order — the property
the code-range predicate translation and the O(n) group-by factorization
rely on.

This module implements the dictionary encoding and the compression-rate
statistic consumed by the cost model.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.types import DataType
from repro.engine.zonemap import is_nan as _is_nan


def code_width_bytes(num_distinct: int) -> int:
    """Width in bytes of one dictionary code for ``num_distinct`` values.

    Codes are bit-packed in real systems; we round to the next whole byte,
    which preserves the qualitative dependence of scan cost on the number of
    distinct values.
    """
    if num_distinct <= 1:
        return 1
    bits = int(np.ceil(np.log2(num_distinct)))
    return max(1, (bits + 7) // 8)


class ColumnDictionary:
    """Sorted dictionary of the distinct values of one column.

    Because the values are kept sorted, the value→code mapping *is* a binary
    search — no separate hash map has to be maintained (inserting a value
    mid-dictionary would otherwise re-number every larger value's hash-map
    entry one by one).

    ``_values`` holds only the sorted real values (NaN, if present, last by
    convention); NULL is represented by the ``_has_null`` flag and the
    reserved code 0.  The code of the value at sorted position *p* is
    ``p + offset`` where ``offset`` is 1 iff NULL is present.
    """

    def __init__(self, dtype: DataType) -> None:
        self.dtype = dtype
        self._values: List[Any] = []
        self._has_null = False
        self._values_array: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._values) + self._offset

    @property
    def _offset(self) -> int:
        return 1 if self._has_null else 0

    def _real_count(self) -> int:
        """Number of orderable values — the bisect search space.

        Every ``bisect`` over ``_values`` must stop before a trailing NaN:
        comparisons against NaN are all false, so an unbounded binary search
        whose probe lands on the NaN entry jumps *past* it and can overshoot
        real values below it (e.g. placing 129.3 after 143.32).
        """
        values = self._values
        if values and _is_nan(values[-1]):
            return len(values) - 1
        return len(values)

    @property
    def values(self) -> Sequence[Any]:
        """The dictionary entries in code order (``None`` first if present)."""
        if self._has_null:
            return (None,) + tuple(self._values)
        return tuple(self._values)

    @property
    def values_array(self) -> np.ndarray:
        """The dictionary entries as a code-aligned numpy array (cached).

        Decoding a whole code array is one fancy-indexing gather
        (``values_array[codes]``) instead of a per-value Python loop.  When
        NULL is present the array is an object array with ``None`` at
        position 0.
        """
        if self._values_array is None:
            from repro.engine.batch import values_to_array

            if self._has_null:
                array = np.empty(len(self._values) + 1, dtype=object)
                array[0] = None
                for position, value in enumerate(self._values):
                    array[position + 1] = value
                self._values_array = array
            else:
                self._values_array = values_to_array(self._values)
        return self._values_array

    def _invalidate(self) -> None:
        self._values_array = None

    def encode_with_insert(self, value: Any) -> Tuple[int, Optional[int]]:
        """Return ``(code, shift_position)`` for *value*, inserting it if new.

        The dictionary stays sorted, so inserting a new value shifts the codes
        of every larger value by one.  ``shift_position`` is the insertion
        position when that happened (the caller must re-map already stored
        codes ``>= shift_position``), or ``None`` if the value already existed.
        Adding NULL to a NULL-free dictionary reserves code 0, which shifts
        *every* stored code (``shift_position`` 0).  The shift itself is
        implicit — codes are positions in the code-ordered entry list; the
        *cost* of dictionary maintenance is accounted for by the device
        model, not by Python runtime.
        """
        if value is None:
            if self._has_null:
                return 0, None
            self._has_null = True
            self._invalidate()
            # Code 0 is now NULL; every existing value code moves up by one.
            return 0, 0
        offset = self._offset
        if _is_nan(value):
            # NaN defeats bisect (every comparison is false would place it
            # first); it sorts *last* by convention, like np.unique puts it.
            code = self.nan_code
            if code is not None:
                return code, None
            self._values.append(value)
            self._invalidate()
            # Appended behind every existing value: no stored code shifts.
            return len(self._values) - 1 + offset, None
        position = bisect.bisect_left(self._values, value, 0, self._real_count())
        if position < len(self._values) and self._values[position] == value:
            return position + offset, None
        self._values.insert(position, value)
        self._invalidate()
        return position + offset, position + offset

    def clone(self) -> "ColumnDictionary":
        """An independent copy (delta merges build aside and swap atomically)."""
        copy = ColumnDictionary(self.dtype)
        copy._values = list(self._values)
        copy._has_null = self._has_null
        return copy

    def encode(self, value: Any) -> int:
        """Return the current code for *value*, adding it to the dictionary if new.

        Beware that inserting a new value can shift the codes of larger
        values; :class:`CompressedColumn` uses :meth:`encode_with_insert` and
        re-maps its stored codes accordingly.
        """
        code, _ = self.encode_with_insert(value)
        return code

    def encode_existing(self, value: Any) -> Optional[int]:
        """Return the code for *value* or ``None`` if it is not present."""
        if value is None:
            return 0 if self._has_null else None
        try:
            position = bisect.bisect_left(self._values, value, 0, self._real_count())
        except TypeError:
            # Literal of an incomparable type can never be in the dictionary.
            return None
        if position < len(self._values) and self._values[position] == value:
            return position + self._offset
        return None

    @property
    def has_null(self) -> bool:
        """Whether NULL is present (and code 0 is reserved for it)."""
        return self._has_null

    @property
    def holds_null(self) -> bool:
        """Whether this is the *all-NULL* dictionary (``None`` is its only entry).

        Any comparison predicate over such a column is false for every row.
        Mixed dictionaries (NULL alongside values) report ``False`` here and
        ``True`` for :attr:`has_null`.
        """
        return self._has_null and not self._values

    @property
    def nan_code(self) -> Optional[int]:
        """Code of a NaN dictionary entry, or ``None``.

        ``np.unique`` (and :func:`bisect`) sort NaN after every real value, so
        if present it is the last entry of the dictionary.
        """
        if self._values:
            last = self._values[-1]
            if isinstance(last, float) and last != last:
                return len(self._values) - 1 + self._offset
        return None

    def value_bounds(self) -> Tuple[Any, Any, bool]:
        """``(min, max, has_nan)`` over the real (non-NULL, non-NaN) values.

        This is the zone-map view of the dictionary: after in-place updates
        the dictionary may retain entries no stored code references, so the
        bounds are a *superset* of the live value range — safe for pruning
        (a wider zone can only miss a pruning opportunity, never drop rows).
        Deletes rebuild the dictionary from the surviving codes, which
        re-tightens the bounds.
        """
        values = self._values
        has_nan = self.nan_code is not None
        if has_nan:
            values = values[:-1]
        if not values:
            return None, None, has_nan
        return values[0], values[-1], has_nan

    def decode(self, code: int) -> Any:
        if self._has_null:
            return None if code == 0 else self._values[code - 1]
        return self._values[code]

    def decode_many(self, codes: Iterable[int]) -> List[Any]:
        return self.decode_array(np.fromiter(codes, dtype=np.int64)).tolist()

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Decode a code array with one fancy-indexing gather.

        Small gathers against a cold cache (typical for point/range selects
        right after a dictionary insert invalidated it) decode per value
        instead of rebuilding the whole values array.
        """
        if len(self) == 0:
            return np.empty(0, dtype=object)
        if self._values_array is None and len(codes) * 4 < len(self):
            from repro.engine.batch import values_to_array

            return values_to_array([self.decode(code) for code in codes.tolist()])
        return self.values_array[codes]

    def range_codes(self, low: Any, high: Any,
                    include_low: bool = True, include_high: bool = True) -> Tuple[int, int]:
        """Return the half-open code interval ``[lo, hi)`` of values in range.

        Because the dictionary is sorted, a value-range predicate translates
        into a code-range predicate — the "implicit index" of the column
        store.  The interval never includes the reserved NULL code: both ends
        carry the code offset, so ``lo >= 1`` whenever NULL is present.
        """
        offset = self._offset
        reals = self._real_count()
        if low is None:
            lo = 0
        else:
            lo = (bisect.bisect_left(self._values, low, 0, reals) if include_low
                  else bisect.bisect_right(self._values, low, 0, reals))
        if high is None:
            hi = len(self._values)
        else:
            hi = (bisect.bisect_right(self._values, high, 0, reals) if include_high
                  else bisect.bisect_left(self._values, high, 0, reals))
        return lo + offset, hi + offset

    def bulk_build(self, values: Sequence[Any]) -> np.ndarray:
        """Build the dictionary from *values* in one pass and return the codes."""
        from repro.engine.batch import values_to_array

        self._invalidate()
        self._has_null = False
        array = values_to_array(values)
        if array.dtype != object:
            # Native values: sort, dedup and encode entirely in numpy.
            distinct, codes = np.unique(array, return_inverse=True)
            self._values = distinct.tolist()
            return codes.reshape(-1).astype(np.int64, copy=False)
        value_list = array.tolist()
        null_mask = np.fromiter(
            (value is None for value in value_list), dtype=bool, count=len(value_list)
        )
        if null_mask.any():
            self._has_null = True
            non_null = [value for value in value_list if value is not None]
            sub = values_to_array(non_null)
            codes = np.zeros(len(value_list), dtype=np.int64)
            if sub.dtype != object:
                distinct, sub_codes = np.unique(sub, return_inverse=True)
                self._values = distinct.tolist()
                sub_codes = sub_codes.reshape(-1).astype(np.int64, copy=False)
            else:
                self._values = sorted(set(non_null))
                code_of = {v: i for i, v in enumerate(self._values)}
                sub_codes = np.fromiter(
                    (code_of[v] for v in non_null), dtype=np.int64, count=len(non_null)
                )
            codes[~null_mask] = sub_codes + 1
            return codes
        distinct = sorted(set(value_list))
        self._values = list(distinct)
        code_of = {v: i for i, v in enumerate(self._values)}
        return np.fromiter((code_of[v] for v in value_list), dtype=np.int64,
                           count=len(value_list))

    def bulk_codes(self, values: Sequence[Any]) -> np.ndarray:
        """Codes for *values*, all of which must already be in the dictionary."""
        from repro.engine.batch import values_to_array

        if not self._has_null:
            array = self.values_array
            if array.dtype != object:
                candidate = values_to_array(values)
                if candidate.dtype != object:
                    return np.searchsorted(array, candidate).astype(np.int64, copy=False)
        offset = self._offset
        code_of = {v: i + offset for i, v in enumerate(self._values)}
        nan_code = self.nan_code

        def code_for(value: Any) -> int:
            if value is None:
                return 0
            if _is_nan(value):
                return nan_code
            return code_of[value]

        return np.fromiter(
            (code_for(v) for v in values), dtype=np.int64, count=len(values)
        )

    def merge_values(self, new_values: Sequence[Any]) -> Optional[np.ndarray]:
        """Insert any not-yet-present values of *new_values* in one pass.

        Returns the old-code → new-code remap array (the caller re-maps its
        stored codes), or ``None`` when the dictionary did not change.  NaN
        is kept out of the sort (it would poison Python's ``sorted``) and
        re-appended last, where :attr:`nan_code` expects it; a first NULL
        reserves code 0 and shifts every value code up by one.
        """
        fresh = []
        fresh_nan = False
        fresh_null = False
        for value in set(new_values):
            if value is None:
                fresh_null = not self._has_null
            elif _is_nan(value):
                fresh_nan = True
            elif self.encode_existing(value) is None:
                fresh.append(value)
        old_nan = self.nan_code is not None
        if not fresh and not (fresh_nan and not old_nan) and not fresh_null:
            return None
        old_offset = self._offset
        old_values = self._values
        core_count = self._real_count()
        core = old_values[:core_count]
        # Splice the (typically few) fresh values into the sorted entry list
        # at their bisect positions; a value code moves up by one for every
        # fresh value landing at or before its position, which makes the
        # old-code -> new-code remap a vectorized searchsorted instead of a
        # Python dict rebuild over the whole dictionary.  Interleaved
        # insert/merge workloads hit this once per statement batch.
        fresh.sort()
        positions = [bisect.bisect_left(core, value) for value in fresh]
        merged: List[Any] = []
        previous = 0
        for position, value in zip(positions, fresh):
            merged.extend(core[previous:position])
            merged.append(value)
            previous = position
        merged.extend(core[previous:])
        if old_nan:
            # Reuse the stored NaN object (NaN != NaN defeats lookups).
            merged.append(old_values[-1])
        elif fresh_nan:
            merged.append(float("nan"))
        self._values = merged
        if fresh_null:
            self._has_null = True
        self._invalidate()
        new_offset = self._offset
        remap = np.empty(old_offset + len(old_values), dtype=np.int64)
        if old_offset:
            remap[0] = 0
        if core_count:
            shifts = np.searchsorted(
                np.asarray(positions, dtype=np.int64),
                np.arange(core_count),
                side="right",
            )
            remap[old_offset:old_offset + core_count] = (
                np.arange(core_count) + shifts + new_offset
            )
        if old_nan:
            remap[old_offset + core_count] = new_offset + len(merged) - 1
        return remap

    def rebuild_from_codes(self, kept_codes: np.ndarray) -> np.ndarray:
        """Shrink the dictionary to the codes in *kept_codes* (columnar delete).

        Returns *kept_codes* re-mapped to the shrunken dictionary.  The
        surviving entries keep their code order (NULL first if it survives),
        so the result is exactly the dictionary a fresh bulk build over the
        surviving rows would produce.
        """
        used = np.unique(kept_codes)
        old_offset = self._offset
        self._values = [
            self._values[int(code) - old_offset]
            for code in used
            if code >= old_offset
        ]
        self._has_null = bool(old_offset and len(used) and used[0] == 0)
        self._invalidate()
        return np.searchsorted(used, kept_codes).astype(np.int64, copy=False)


class CompressedColumn:
    """One dictionary-encoded column: a dictionary plus an array of codes."""

    GROWTH = 1024

    def __init__(self, name: str, dtype: DataType) -> None:
        self.name = name
        self.dtype = dtype
        self.dictionary = ColumnDictionary(dtype)
        self._codes = np.empty(self.GROWTH, dtype=np.int64)
        self._size = 0
        # Maintained incrementally by every mutator: the zone-map synopsis
        # consults it on each filtered scan, and an O(n) recount there would
        # tax interleaved insert/scan workloads.
        self._null_count = 0

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The code array (a view limited to the live portion)."""
        return self._codes[: self._size]

    @property
    def null_count(self) -> int:
        """Number of stored NULL cells (codes equal to the reserved code 0)."""
        return self._null_count

    def _recount_nulls(self) -> None:
        """Recount from the codes (bulk rebuild paths only)."""
        if not self.dictionary.has_null or self._size == 0:
            self._null_count = 0
        else:
            self._null_count = int(np.count_nonzero(self.codes == 0))

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._codes):
            return
        new_capacity = max(needed, int(len(self._codes) * 1.5) + self.GROWTH)
        grown = np.empty(new_capacity, dtype=np.int64)
        grown[: self._size] = self._codes[: self._size]
        self._codes = grown

    def _encode_maintaining_codes(self, value: Any) -> int:
        """Encode *value*, re-mapping stored codes if the dictionary shifted."""
        code, shift_position = self.dictionary.encode_with_insert(value)
        if shift_position is not None and self._size:
            live = self._codes[: self._size]
            live[live >= shift_position] += 1
        return code

    def append(self, value: Any) -> None:
        code = self._encode_maintaining_codes(value)
        self._ensure_capacity(1)
        self._codes[self._size] = code
        self._size += 1
        if value is None:
            self._null_count += 1

    def extend(self, values: Sequence[Any]) -> None:
        """Append *values*, merging new distinct values in one dictionary pass.

        Bulk encoding re-sorts the dictionary at most once per batch (instead
        of once per new value) and re-maps the stored codes with a single
        vectorized gather.
        """
        values = values if isinstance(values, list) else list(values)
        if not values:
            return
        if len(values) == 1:
            self.append(values[0])
            return
        dictionary = self.dictionary
        remap = dictionary.merge_values(values)
        if remap is not None and self._size:
            live = self._codes[: self._size]
            live[:] = remap[live]
        new_codes = dictionary.bulk_codes(values)
        self._ensure_capacity(len(values))
        self._codes[self._size: self._size + len(values)] = new_codes
        self._size += len(values)
        self._null_count += sum(1 for value in values if value is None)

    def bulk_load(self, values: Sequence[Any]) -> None:
        """Replace the column contents with *values* (fast path for loads)."""
        codes = self.dictionary.bulk_build(values)
        self._codes = codes
        self._size = len(values)
        self._recount_nulls()

    def load_codes(self, codes: np.ndarray) -> None:
        """Adopt a pre-encoded code array (columnar rebuild fast path)."""
        self._codes = np.ascontiguousarray(codes, dtype=np.int64)
        self._size = len(codes)
        self._recount_nulls()

    def truncate(self, size: int) -> None:
        """Roll the live code region back to *size* rows (batch-insert abort).

        Values merged into the dictionary by the aborted batch may survive as
        unused entries; the remap applied alongside the merge kept every live
        code decoding to its original value, so the column stays consistent.
        """
        self._size = size
        self._recount_nulls()

    def clone(self) -> "CompressedColumn":
        """An independent copy of the live region (dictionary included).

        Delta merges extend a clone and swap it in atomically, and sealed
        tables copy-on-write through this before an in-place mutation — the
        original object keeps serving snapshot readers unchanged.
        """
        copy = CompressedColumn(self.name, self.dtype)
        copy.dictionary = self.dictionary.clone()
        copy._codes = self._codes[: self._size].copy()
        copy._size = self._size
        copy._null_count = self._null_count
        return copy

    def codes_at(self, positions: Optional[Sequence[int]] = None) -> np.ndarray:
        """The code array (all rows, or a position gather) — no decoding."""
        if positions is None:
            return self.codes
        return self._codes[np.asarray(positions, dtype=np.int64)]

    def value_at(self, position: int) -> Any:
        return self.dictionary.decode(int(self._codes[position]))

    def values_at(self, positions: Sequence[int]) -> List[Any]:
        codes = self._codes[np.asarray(positions, dtype=np.int64)]
        return self.dictionary.decode_array(codes).tolist()

    def values_array_at(self, positions: Optional[Sequence[int]] = None) -> np.ndarray:
        """Decoded values as a numpy array (all rows, or a position gather)."""
        if positions is None:
            codes = self.codes
        else:
            codes = self._codes[np.asarray(positions, dtype=np.int64)]
        return self.dictionary.decode_array(codes)

    def all_values(self) -> List[Any]:
        return self.dictionary.decode_array(self.codes).tolist()

    def set_value(self, position: int, value: Any) -> None:
        # Nullness of the old cell must be read before the encode: encoding
        # the first NULL reserves code 0 and shifts every stored code.
        was_null = self.dictionary.has_null and self._codes[position] == 0
        code = self._encode_maintaining_codes(value)
        self._codes[position] = code
        if value is None:
            if not was_null:
                self._null_count += 1
        elif was_null:
            self._null_count -= 1

    # -- statistics --------------------------------------------------------------

    @property
    def num_distinct(self) -> int:
        return len(self.dictionary)

    @property
    def raw_bytes(self) -> float:
        """Uncompressed footprint of the column."""
        return self._size * self.dtype.width_bytes

    @property
    def code_bytes(self) -> float:
        """Size of the code array alone — the bytes a sequential scan reads."""
        return self._size * code_width_bytes(self.num_distinct)

    @property
    def compressed_bytes(self) -> float:
        """Dictionary-encoded footprint: code array plus the dictionary."""
        dict_bytes = self.num_distinct * self.dtype.width_bytes
        return self.code_bytes + dict_bytes

    @property
    def compression_rate(self) -> float:
        """Compressed size relative to the raw size (lower is better).

        An empty column reports 1.0 (no compression benefit).
        """
        if self._size == 0:
            return 1.0
        return min(1.0, self.compressed_bytes / self.raw_bytes)
