"""Dictionary compression for the column store.

The column store of the paper's hybrid database (SAP HANA) keeps every column
dictionary-encoded: the distinct values are stored once in a sorted
dictionary, and the column itself is an array of integer codes.  Two
consequences matter for the storage advisor:

* aggregation scans touch far fewer bytes than a row-store scan would (the
  paper's ``f_compression`` adjustment), and
* the dictionary acts as an *implicit index* for point and range predicates
  (Section 3.1, point/range queries on the column store).

This module implements the dictionary encoding and the compression-rate
statistic consumed by the cost model.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.types import DataType


def code_width_bytes(num_distinct: int) -> int:
    """Width in bytes of one dictionary code for ``num_distinct`` values.

    Codes are bit-packed in real systems; we round to the next whole byte,
    which preserves the qualitative dependence of scan cost on the number of
    distinct values.
    """
    if num_distinct <= 1:
        return 1
    bits = int(np.ceil(np.log2(num_distinct)))
    return max(1, (bits + 7) // 8)


class ColumnDictionary:
    """Sorted dictionary of the distinct values of one column."""

    def __init__(self, dtype: DataType) -> None:
        self.dtype = dtype
        self._values: List[Any] = []
        self._codes: Dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[Any]:
        return tuple(self._values)

    def encode_with_insert(self, value: Any) -> Tuple[int, Optional[int]]:
        """Return ``(code, shift_position)`` for *value*, inserting it if new.

        The dictionary stays sorted, so inserting a new value shifts the codes
        of every larger value by one.  ``shift_position`` is the insertion
        position when that happened (the caller must re-map already stored
        codes ``>= shift_position``), or ``None`` if the value already existed.
        """
        if value in self._codes:
            return self._codes[value], None
        position = bisect.bisect_left(self._values, value) if self._values else 0
        self._values.insert(position, value)
        # Re-number the codes of shifted values.  For the in-memory model we
        # simply rebuild the mapping; the *cost* of dictionary maintenance is
        # accounted for by the device model, not by Python runtime.
        if position == len(self._values) - 1:
            self._codes[value] = position
        else:
            self._codes = {v: i for i, v in enumerate(self._values)}
        return position, position

    def encode(self, value: Any) -> int:
        """Return the current code for *value*, adding it to the dictionary if new.

        Beware that inserting a new value can shift the codes of larger
        values; :class:`CompressedColumn` uses :meth:`encode_with_insert` and
        re-maps its stored codes accordingly.
        """
        code, _ = self.encode_with_insert(value)
        return code

    def encode_existing(self, value: Any) -> Optional[int]:
        """Return the code for *value* or ``None`` if it is not present."""
        return self._codes.get(value)

    def decode(self, code: int) -> Any:
        return self._values[code]

    def decode_many(self, codes: Iterable[int]) -> List[Any]:
        values = self._values
        return [values[code] for code in codes]

    def range_codes(self, low: Any, high: Any,
                    include_low: bool = True, include_high: bool = True) -> Tuple[int, int]:
        """Return the half-open code interval ``[lo, hi)`` of values in range.

        Because the dictionary is sorted, a value-range predicate translates
        into a code-range predicate — the "implicit index" of the column store.
        """
        if low is None:
            lo = 0
        else:
            lo = (bisect.bisect_left(self._values, low) if include_low
                  else bisect.bisect_right(self._values, low))
        if high is None:
            hi = len(self._values)
        else:
            hi = (bisect.bisect_right(self._values, high) if include_high
                  else bisect.bisect_left(self._values, high))
        return lo, hi

    def bulk_build(self, values: Sequence[Any]) -> np.ndarray:
        """Build the dictionary from *values* in one pass and return the codes."""
        distinct = sorted(set(values))
        self._values = list(distinct)
        self._codes = {v: i for i, v in enumerate(self._values)}
        return np.fromiter((self._codes[v] for v in values), dtype=np.int64,
                           count=len(values))


class CompressedColumn:
    """One dictionary-encoded column: a dictionary plus an array of codes."""

    GROWTH = 1024

    def __init__(self, name: str, dtype: DataType) -> None:
        self.name = name
        self.dtype = dtype
        self.dictionary = ColumnDictionary(dtype)
        self._codes = np.empty(self.GROWTH, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The code array (a view limited to the live portion)."""
        return self._codes[: self._size]

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._codes):
            return
        new_capacity = max(needed, int(len(self._codes) * 1.5) + self.GROWTH)
        grown = np.empty(new_capacity, dtype=np.int64)
        grown[: self._size] = self._codes[: self._size]
        self._codes = grown

    def _encode_maintaining_codes(self, value: Any) -> int:
        """Encode *value*, re-mapping stored codes if the dictionary shifted."""
        code, shift_position = self.dictionary.encode_with_insert(value)
        if shift_position is not None and self._size:
            live = self._codes[: self._size]
            live[live >= shift_position] += 1
        return code

    def append(self, value: Any) -> None:
        code = self._encode_maintaining_codes(value)
        self._ensure_capacity(1)
        self._codes[self._size] = code
        self._size += 1

    def extend(self, values: Sequence[Any]) -> None:
        for value in values:
            self.append(value)

    def bulk_load(self, values: Sequence[Any]) -> None:
        """Replace the column contents with *values* (fast path for loads)."""
        codes = self.dictionary.bulk_build(values)
        self._codes = codes
        self._size = len(values)

    def value_at(self, position: int) -> Any:
        return self.dictionary.decode(int(self._codes[position]))

    def values_at(self, positions: Sequence[int]) -> List[Any]:
        codes = self._codes[np.asarray(positions, dtype=np.int64)]
        return self.dictionary.decode_many(codes.tolist())

    def all_values(self) -> List[Any]:
        return self.dictionary.decode_many(self.codes.tolist())

    def set_value(self, position: int, value: Any) -> None:
        code = self._encode_maintaining_codes(value)
        self._codes[position] = code

    # -- statistics --------------------------------------------------------------

    @property
    def num_distinct(self) -> int:
        return len(self.dictionary)

    @property
    def raw_bytes(self) -> float:
        """Uncompressed footprint of the column."""
        return self._size * self.dtype.width_bytes

    @property
    def code_bytes(self) -> float:
        """Size of the code array alone — the bytes a sequential scan reads."""
        return self._size * code_width_bytes(self.num_distinct)

    @property
    def compressed_bytes(self) -> float:
        """Dictionary-encoded footprint: code array plus the dictionary."""
        dict_bytes = self.num_distinct * self.dtype.width_bytes
        return self.code_bytes + dict_bytes

    @property
    def compression_rate(self) -> float:
        """Compressed size relative to the raw size (lower is better).

        An empty column reports 1.0 (no compression benefit).
        """
        if self._size == 0:
            return 1.0
        return min(1.0, self.compressed_bytes / self.raw_bytes)
