"""End-to-end data integrity: content checksums, quarantine, scrub.

PR 6 gave WAL records crc32 framing, but everything *after* the log was
trusted blindly: checkpoint snapshots, the in-memory code arrays and the
shared-memory segments shipped to shard workers would serve a flipped bit
silently (or surface it as a raw pickle/numpy error far from its cause).
This module is the common core of the integrity layer:

* **Unit checksums** — a partition unit here is one column of one
  column-store backend: crc32 over the main code array's bytes, extended
  over the pickled dictionary payload (:func:`unit_checksum`).  The
  :class:`TableIntegrity` state each :class:`ColumnStoreTable` carries
  caches checksums per zone epoch, exactly like the zone-synopsis cache:
  a mutation bumps the epoch, the stale entry is discarded, and the next
  read records a fresh baseline.  The delta buffer is not checksummed —
  it is uncompressed, short-lived, and re-encoded (and re-checksummed)
  by the next merge.

* **Lazy scan verification** — the column store calls
  :meth:`TableIntegrity.verify_on_read` from its read entry points: a
  cheap quarantine gate on every read, plus one full checksum comparison
  per (column, zone epoch).  A mismatch quarantines the unit and raises
  :class:`~repro.errors.DataCorruptionError` naming the exact
  table/partition/column; every later access raises until
  ``Session.repair()`` rebuilds the unit.  Verification is billed **zero
  simulated cost** — no :class:`~repro.engine.timing.CostAccountant`
  interaction — so every differential fuzzer stays bit-identical with
  integrity on or off.

* **Eager shard verification** — the parent ships each column's expected
  code-array crc (:func:`codes_checksum`, served from the same epoch
  cache) with every shard task; workers recompute it over the attached
  shared-memory segment before executing.  A mismatch fails the task,
  which feeds PR 9's degradation ladder: republish → retry (fresh
  segments copied from canonical memory) → serial, which never touches a
  segment at all.

* **The scrubber** — :func:`scrub` walks every table's partition units
  (``integrity_units()`` on ``StoredTable``/``PartitionedTable``),
  verifies each against its recorded baseline and returns an
  :class:`IntegrityReport`; ``Session.verify_integrity()`` is the public
  entry point and ``Session.repair()`` consumes the report.

Process-wide counters (:func:`integrity_counters`) follow the resilience
layer's pattern: sessions snapshot at construction and report lifetime
deltas in ``SessionStats``; the executor diffs them around each query for
the ``EXPLAIN ANALYZE`` ``integrity:`` lines.
"""

from __future__ import annotations

import pickle
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.config import IntegrityConfig
from repro.errors import DataCorruptionError

# -- checksums -------------------------------------------------------------------------


def codes_checksum(codes: np.ndarray) -> int:
    """crc32 of a code array's contents — the bytes a shared segment holds.

    The array is viewed as contiguous int64 (the layout both the canonical
    main store and the published shared-memory segments use), so the parent
    and a worker computing this over equal contents always agree.
    """
    return zlib.crc32(
        np.ascontiguousarray(codes, dtype=np.int64).tobytes()
    ) & 0xFFFFFFFF


def unit_checksum(codes: np.ndarray, dictionary) -> int:
    """Full content checksum of one unit: code array + dictionary payload.

    The dictionary payload is the pickled tuple of its (sorted) values —
    deterministic for equal values, NULL/NaN entries included — continued
    from the code-array crc so a flip in either part changes the result.
    """
    crc = zlib.crc32(np.ascontiguousarray(codes, dtype=np.int64).tobytes())
    payload = pickle.dumps(
        tuple(dictionary.values), protocol=pickle.HIGHEST_PROTOCOL
    )
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


# -- process-wide configuration --------------------------------------------------------

_CONFIG = IntegrityConfig()


def apply_integrity_config(config: IntegrityConfig) -> None:
    """Install *config* as the process-wide integrity policy.

    Process-wide for the same reason the resilience knobs are: the shard
    worker pool and its shared segments are shared across sessions, so the
    checksum policy governing them must be too.
    """
    global _CONFIG
    _CONFIG = config


def integrity_config() -> IntegrityConfig:
    return _CONFIG


def integrity_enabled() -> bool:
    """Whether checksum maintenance and verification run at all."""
    return _CONFIG.enabled


def verify_on_scan_enabled() -> bool:
    return _CONFIG.enabled and _CONFIG.verify_on_scan


def verify_on_attach_enabled() -> bool:
    return _CONFIG.enabled and _CONFIG.verify_on_attach


@contextmanager
def integrity_disabled() -> Iterator[None]:
    """Scope with all checksum verification off (reference runs, tests).

    Quarantine state already recorded keeps raising — disabling
    verification must never un-quarantine corrupt data.
    """
    global _CONFIG
    previous = _CONFIG
    _CONFIG = replace(previous, enabled=False)
    try:
        yield
    finally:
        _CONFIG = previous


# -- counters --------------------------------------------------------------------------


@dataclass
class IntegrityCounters:
    """Process-wide integrity telemetry (sessions report deltas)."""

    #: Checksum verifications performed (baseline establishment included).
    units_verified: int = 0
    #: Checksum mismatches detected (scan-time or scrub).
    corruption_detected: int = 0
    #: Units placed in quarantine.
    units_quarantined: int = 0
    #: Quarantined units rebuilt by ``Session.repair()``.
    units_repaired: int = 0

    def snapshot(self) -> "IntegrityCounters":
        return replace(self)

    def delta(self, baseline: "IntegrityCounters") -> Dict[str, int]:
        """Non-zero counter movements since *baseline*, by field name."""
        moved = {}
        for spec in fields(self):
            diff = getattr(self, spec.name) - getattr(baseline, spec.name)
            if diff:
                moved[spec.name] = diff
        return moved


_COUNTERS = IntegrityCounters()


def integrity_counters() -> IntegrityCounters:
    """The live process-wide counters (snapshot before mutating state)."""
    return _COUNTERS


# -- per-backend state -----------------------------------------------------------------


class TableIntegrity:
    """Checksum and quarantine state of one column-store backend.

    Owned by :class:`~repro.engine.column_store.ColumnStoreTable`; the
    partitioning layer labels the instance with its partition (``"main"``,
    ``"hot"``, ``"main.row"``/``"main.column"`` for vertical halves) so
    corruption errors name the exact unit.  Checksums are cached per zone
    epoch: every mutator bumps the epoch, which invalidates the entry, and
    the next read records a fresh baseline — detection therefore means "the
    content changed *without* a mutation", exactly the definition of silent
    corruption.
    """

    __slots__ = ("table", "partition", "_checksums", "_scan_verified",
                 "_quarantined")

    def __init__(self, table: str) -> None:
        self.table = table
        self.partition: Optional[str] = None
        #: column -> (zone epoch, codes crc, full unit crc)
        self._checksums: Dict[str, Tuple[int, int, int]] = {}
        #: column -> zone epoch at which the lazy scan check last ran
        self._scan_verified: Dict[str, int] = {}
        #: column -> reason; entries survive until repair replaces the unit
        self._quarantined: Dict[str, str] = {}

    # -- quarantine ----------------------------------------------------------------

    def location(self, column: str) -> str:
        if self.partition is None:
            return f"table {self.table!r}, column {column!r}"
        return (f"table {self.table!r}, partition {self.partition!r}, "
                f"column {column!r}")

    def quarantined_columns(self) -> List[str]:
        return sorted(self._quarantined)

    def quarantine_reason(self, column: str) -> Optional[str]:
        return self._quarantined.get(column)

    def check_quarantine(self, column: str) -> None:
        """Raise :class:`DataCorruptionError` if *column* is quarantined."""
        reason = self._quarantined.get(column)
        if reason is not None:
            raise DataCorruptionError(
                f"quarantined unit ({self.location(column)}): {reason}",
                table=self.table, partition=self.partition, column=column,
            )

    def quarantine(self, column: str, reason: str) -> None:
        if column not in self._quarantined:
            self._quarantined[column] = reason
            _COUNTERS.units_quarantined += 1

    # -- checksums -----------------------------------------------------------------

    def expected(self, column: str, codes: np.ndarray, dictionary,
                 epoch: int) -> Tuple[int, int]:
        """``(codes crc, unit crc)`` recorded for *column* at *epoch*.

        Records a fresh baseline when the epoch moved (a mutation
        legitimately changed the content).  The shard publisher reads the
        codes crc from here, so segment verification and scan verification
        share one definition of "expected".
        """
        cached = self._checksums.get(column)
        if cached is not None and cached[0] == epoch:
            return cached[1], cached[2]
        codes_crc = codes_checksum(codes)
        payload = pickle.dumps(
            tuple(dictionary.values), protocol=pickle.HIGHEST_PROTOCOL
        )
        unit_crc = zlib.crc32(payload, codes_crc) & 0xFFFFFFFF
        self._checksums[column] = (epoch, codes_crc, unit_crc)
        return codes_crc, unit_crc

    def verify(self, column: str, codes: np.ndarray, dictionary,
               epoch: int) -> bool:
        """Recompute the unit checksum and compare with the recorded one.

        Establishes the baseline (and trivially passes) when none exists
        for the current epoch.  A mismatch quarantines the unit and returns
        ``False`` — the caller decides whether to raise.
        """
        _COUNTERS.units_verified += 1
        cached = self._checksums.get(column)
        if cached is None or cached[0] != epoch:
            self.expected(column, codes, dictionary, epoch)
            return True
        actual = unit_checksum(codes, dictionary)
        if actual == cached[2]:
            return True
        _COUNTERS.corruption_detected += 1
        self.quarantine(
            column,
            f"checksum mismatch (expected {cached[2]:#010x}, "
            f"found {actual:#010x})",
        )
        return False

    def scan_pending(self, column: str, epoch: int) -> bool:
        """Whether the lazy scan check still owes a verification at *epoch*.

        Marks the epoch as checked — at most one full checksum comparison
        per (column, epoch), so repeated scans (and the insert-heavy
        benches, which never read) pay nothing.
        """
        if self._scan_verified.get(column) == epoch:
            return False
        self._scan_verified[column] = epoch
        return True


# -- the scrubber ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorruptUnit:
    """One quarantined partition unit found by the scrubber."""

    table: str
    partition: Optional[str]
    column: str
    reason: str


@dataclass
class IntegrityReport:
    """What one scrub pass found (see ``Session.verify_integrity``)."""

    #: Units whose checksum was verified this pass (baselines included).
    units_verified: int = 0
    #: Units checksummed for the first time this pass (no prior baseline —
    #: scrubbing cannot vouch for content it never saw intact).
    baselines_recorded: int = 0
    #: Corrupt units, newly detected and previously quarantined alike.
    corrupt: List[CorruptUnit] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt


def scrub(table_objects: Iterable) -> IntegrityReport:
    """Walk every partition unit of *table_objects* and verify checksums.

    *table_objects* are ``StoredTable``/``PartitionedTable`` instances (duck
    typed via ``integrity_units()`` to keep this module import-light).
    Row-store units carry no checksums and are skipped.  Corrupt units are
    quarantined as a side effect; already-quarantined units are re-reported,
    not re-verified.  With integrity disabled the walk only reports existing
    quarantine state.
    """
    report = IntegrityReport()
    for table_object in table_objects:
        for label, backend in table_object.integrity_units():
            state = getattr(backend, "integrity", None)
            if state is None:
                continue  # row-store unit: not checksummed
            if label is not None:
                state.partition = label
            for name in backend.schema.column_names:
                reason = state.quarantine_reason(name)
                if reason is not None:
                    report.corrupt.append(
                        CorruptUnit(state.table, state.partition, name, reason)
                    )
                    continue
                if not integrity_enabled():
                    continue
                epoch = backend.zone_epoch
                had_baseline = (
                    state._checksums.get(name, (None,))[0] == epoch
                )
                compressed = backend.compressed_column(name)
                report.units_verified += 1
                if not had_baseline:
                    report.baselines_recorded += 1
                if not state.verify(
                    name, compressed.codes, compressed.dictionary, epoch
                ):
                    report.corrupt.append(
                        CorruptUnit(state.table, state.partition, name,
                                    state.quarantine_reason(name))
                    )
    return report
