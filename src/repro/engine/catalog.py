"""System catalog of the hybrid-store database.

The catalog records, per table, the schema, the current storage layout (the
store of an unpartitioned table, or the partitioning annotation described in
Section 4 of the paper), and the table statistics the storage advisor's cost
model consumes.  The executor consults the partitioning annotation to rewrite
queries transparently; the advisor consults the statistics and the layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.engine.partitioning import TablePartitioning
from repro.engine.schema import TableSchema
from repro.engine.statistics import TableStatistics, statistics_from_schema
from repro.engine.types import Store
from repro.errors import CatalogError


@dataclass
class CatalogEntry:
    """Catalog record of one table."""

    schema: TableSchema
    store: Store = Store.ROW
    partitioning: Optional[TablePartitioning] = None
    statistics: Optional[TableStatistics] = None

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def is_partitioned(self) -> bool:
        return self.partitioning is not None

    def describe_layout(self) -> str:
        if self.partitioning is not None:
            return f"partitioned ({self.partitioning.describe()})"
        return f"{self.store.value} store"


@dataclass(frozen=True)
class ViewEntry:
    """Catalog record of one materialized view.

    The entry is the *definition* — name, base table and the defining query's
    fingerprint (the planner's rewrite key).  The materialized state itself
    lives with the database (:class:`~repro.engine.matview.MaterializedView`),
    like table data lives outside the catalog.
    """

    name: str
    table: str
    fingerprint: str
    query: object = field(repr=False, compare=False, default=None)

    def describe(self) -> str:
        return f"{self.name}: view {self.fingerprint} over {self.table}"


class Catalog:
    """Name -> :class:`CatalogEntry` registry (plus the materialized-view registry)."""

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}
        self._views: Dict[str, ViewEntry] = {}
        self._view_version = 0

    # -- registration ----------------------------------------------------------------

    def register_table(
        self,
        schema: TableSchema,
        store: Store = Store.ROW,
        statistics: Optional[TableStatistics] = None,
    ) -> CatalogEntry:
        if schema.name in self._entries:
            raise CatalogError(f"table {schema.name!r} already exists")
        entry = CatalogEntry(schema=schema, store=store, statistics=statistics)
        self._entries[schema.name] = entry
        return entry

    def drop_table(self, name: str) -> None:
        if name not in self._entries:
            raise CatalogError(f"unknown table {name!r}")
        del self._entries[name]

    # -- materialized views ------------------------------------------------------------

    @property
    def view_catalog_version(self) -> int:
        """Monotone counter bumped by view DDL and explicit refreshes.

        Part of the plan-cache key: any change to the view catalog must
        invalidate cached plans, or a plan recorded before ``CREATE VIEW``
        would keep bypassing the view (and one recorded before ``DROP VIEW``
        would keep rewriting to a view that no longer exists).
        """
        return self._view_version

    def bump_view_version(self) -> None:
        self._view_version += 1

    def register_view(self, name: str, table: str, fingerprint: str,
                      query: object = None) -> ViewEntry:
        if name in self._views:
            raise CatalogError(f"materialized view {name!r} already exists")
        if not self.has_table(table):
            raise CatalogError(
                f"materialized view {name!r}: unknown base table {table!r}"
            )
        for other in self._views.values():
            if other.fingerprint == fingerprint:
                raise CatalogError(
                    f"materialized view {other.name!r} already materializes "
                    f"query {fingerprint}"
                )
        entry = ViewEntry(name=name, table=table, fingerprint=fingerprint, query=query)
        self._views[name] = entry
        self.bump_view_version()
        return entry

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"unknown materialized view {name!r}")
        del self._views[name]
        self.bump_view_version()

    def view_entry(self, name: str) -> ViewEntry:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown materialized view {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view_names(self) -> List[str]:
        return sorted(self._views)

    def views_on(self, table: str) -> List[ViewEntry]:
        """View entries whose base table is *table* (sorted by name)."""
        return [self._views[name] for name in self.view_names()
                if self._views[name].table == table]

    def view_for_fingerprint(self, fingerprint: str) -> Optional[ViewEntry]:
        for entry in self._views.values():
            if entry.fingerprint == fingerprint:
                return entry
        return None

    # -- lookup ------------------------------------------------------------------------

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._entries

    def schema(self, name: str) -> TableSchema:
        return self.entry(name).schema

    def store_of(self, name: str) -> Store:
        return self.entry(name).store

    def partitioning_of(self, name: str) -> Optional[TablePartitioning]:
        return self.entry(name).partitioning

    def table_names(self) -> List[str]:
        return sorted(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # -- layout updates -------------------------------------------------------------------

    def set_store(self, name: str, store: Store) -> None:
        entry = self.entry(name)
        entry.store = store
        entry.partitioning = None

    def set_partitioning(self, name: str, partitioning: TablePartitioning) -> None:
        entry = self.entry(name)
        partitioning.validate(entry.schema)
        entry.partitioning = partitioning

    def clear_partitioning(self, name: str, store: Store) -> None:
        entry = self.entry(name)
        entry.partitioning = None
        entry.store = store

    # -- statistics --------------------------------------------------------------------------

    def update_statistics(self, name: str, statistics: TableStatistics) -> None:
        self.entry(name).statistics = statistics

    def statistics_of(self, name: str) -> TableStatistics:
        """Return the stored statistics, deriving defaults from the schema if absent."""
        entry = self.entry(name)
        if entry.statistics is None:
            entry.statistics = statistics_from_schema(entry.schema, num_rows=0, store=entry.store)
        return entry.statistics

    def all_statistics(self) -> Dict[str, TableStatistics]:
        return {name: self.statistics_of(name) for name in self.table_names()}

    # -- reporting ----------------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-line-per-table summary of the current layout."""
        lines = []
        for name in self.table_names():
            entry = self.entry(name)
            rows = entry.statistics.num_rows if entry.statistics else 0
            lines.append(f"{name}: {entry.describe_layout()} ({rows} rows)")
        for name in self.view_names():
            lines.append(f"{self._views[name].describe()} (materialized)")
        return "\n".join(lines)
