"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-level failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is invalid or violated (unknown column, bad type, ...)."""


class CatalogError(ReproError):
    """A catalog operation failed (unknown table, duplicate table, ...)."""


class QueryError(ReproError):
    """A query is malformed or references unknown tables/columns."""


class ExecutionError(ReproError):
    """A query failed during execution."""


class QueryTimeoutError(ExecutionError):
    """A query exceeded its deadline and was cooperatively cancelled.

    Raised by :func:`repro.engine.deadline.deadline_check` (and the shard
    gather loop) when ``Session.execute(timeout=...)`` set a deadline that
    expired mid-execution.  Cancellation is cooperative but prompt — the
    sharded gather polls, so even a wedged worker is abandoned within a poll
    interval of the deadline — and clean: no partial result is returned, no
    cost is billed, and the worker pool is repaired before the error
    propagates.  ``timeout_s`` carries the deadline that expired.
    """

    def __init__(self, message: str, timeout_s: "float | None" = None) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s


class DataCorruptionError(ExecutionError):
    """A partition unit failed its content checksum and is quarantined.

    Raised when a read touches a column whose crc32 no longer matches the
    checksum recorded for the current zone epoch — a bit flip in the code
    array or dictionary payload.  The unit stays quarantined (every further
    access raises) until :meth:`repro.api.session.Session.repair` rebuilds
    it from the checkpoint snapshot + WAL replay, so corrupt data is never
    served silently.  ``table``, ``partition`` and ``column`` name the exact
    unit (``partition`` is ``None`` for an unpartitioned table).
    """

    def __init__(self, message: str, table: "str | None" = None,
                 partition: "str | None" = None,
                 column: "str | None" = None) -> None:
        super().__init__(message)
        self.table = table
        self.partition = partition
        self.column = column


class PartitioningError(ReproError):
    """A partitioning specification is invalid or cannot be applied."""


class WalError(ReproError):
    """A write-ahead log file is unusable (bad magic, wrong sync mode, ...).

    Note that *recoverable* damage — torn tails, checksum-corrupt records —
    does not raise: recovery repairs around it and reports the damage in the
    :class:`~repro.engine.wal.RecoveryReport` instead.  ``WalError`` is for
    files that cannot be a WAL at all.
    """


class SnapshotCorruptError(WalError):
    """A checkpoint snapshot file failed its frame validation.

    Raised by the snapshot reader when the file's magic, length header or
    payload crc32 does not match — a flipped bit, a truncation, or a file
    that is not a snapshot at all.  Recovery catches it and falls back to
    full-log replay (reported via
    :attr:`~repro.engine.wal.RecoveryReport.snapshot_corrupt`); it only
    propagates from direct snapshot reads.
    """


class CalibrationError(ReproError):
    """Cost-model calibration failed (insufficient samples, singular fit, ...)."""


class EstimationError(ReproError):
    """The cost model cannot produce an estimate for a query."""


class AdvisorError(ReproError):
    """The storage advisor could not produce a recommendation."""


class WorkloadError(ReproError):
    """A workload definition or generator input is invalid."""


class BindError(QueryError):
    """A query could not be bound against the catalog.

    Raised by the session layer's bind step (:mod:`repro.api.binder`) when a
    statement references unknown tables or columns, a literal or bound
    parameter does not type-check against the catalog schema, or the supplied
    parameters do not match the statement's placeholders.
    """


class ParseError(QueryError):
    """The SQL-ish parser could not parse the given statement.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    the parser can locate it (both are ``None`` otherwise).
    """

    def __init__(self, message: str, line: "int | None" = None,
                 column: "int | None" = None) -> None:
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column
