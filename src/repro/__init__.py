"""repro — reproduction of "A Storage Advisor for Hybrid-Store Databases".

The package has five layers:

* :mod:`repro.api` — the public session API: ``connect()`` returns a
  :class:`~repro.api.Session` driving the explicit
  ``parse → bind → plan → execute`` pipeline with prepared statements, a
  plan cache and ``EXPLAIN``;
* :mod:`repro.engine` — a from-scratch in-memory hybrid-store database
  (row store + dictionary-compressed column store, partitioning, executor)
  with a deterministic analytic timing model;
* :mod:`repro.query` — the query/workload model;
* :mod:`repro.core` — the paper's contribution: the cost model, its offline
  calibration, the table-level and partition-level storage advisor and the
  online monitor;
* :mod:`repro.workloads` — synthetic, star-schema and TPC-H data/workload
  generators used by the examples and the benchmark harness
  (:mod:`repro.bench`).
"""

from repro.api import PreparedStatement, RecoveryReport, Session, connect, recover
from repro.config import AdvisorConfig, DeviceModelConfig, DurabilityConfig, ReproConfig
from repro.core import (
    CostModel,
    CostModelCalibrator,
    OnlineAdvisorMonitor,
    Recommendation,
    StorageAdvisor,
    StorageLayout,
)
from repro.engine import (
    Column,
    DataType,
    HorizontalPartitionSpec,
    HybridDatabase,
    Store,
    TablePartitioning,
    TableSchema,
    VerticalPartitionSpec,
)
from repro.query import Workload

__version__ = "1.0.0"

__all__ = [
    "AdvisorConfig",
    "Column",
    "CostModel",
    "CostModelCalibrator",
    "DataType",
    "DeviceModelConfig",
    "DurabilityConfig",
    "HorizontalPartitionSpec",
    "HybridDatabase",
    "OnlineAdvisorMonitor",
    "PreparedStatement",
    "Recommendation",
    "RecoveryReport",
    "ReproConfig",
    "Session",
    "connect",
    "recover",
    "StorageAdvisor",
    "StorageLayout",
    "Store",
    "TablePartitioning",
    "TableSchema",
    "VerticalPartitionSpec",
    "Workload",
    "__version__",
]
