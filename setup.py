"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks the ``wheel`` package required by the
PEP 660 editable-wheel path (``pip install -e .`` then falls back to the
legacy ``setup.py develop`` route).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Storage Advisor for Hybrid-Store Databases' "
        "(Roesch et al., VLDB 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
