"""Benchmark configuration.

Every benchmark reproduces one figure of the paper.  The experiments are
deterministic simulations (not micro-benchmarks of Python code), so each is
run exactly once per session through ``benchmark.pedantic`` — the interesting
output is the experiment's series, which is printed at the end of the run.
"""

from __future__ import annotations

import pytest

_RESULTS = []


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: wall-clock perf smoke tests gated against BENCH_pipeline.json",
    )
    config.addinivalue_line(
        "markers",
        "shard: shard-parallel scatter/gather execution suite (the 1M-row "
        "projection gates; select standalone with -m shard)",
    )
    config.addinivalue_line(
        "markers",
        "matview: materialized-view serve-vs-recompute gates "
        "(select standalone with -m matview)",
    )


def run_and_record(benchmark, experiment_fn, **kwargs):
    """Run *experiment_fn* once under pytest-benchmark and record its result."""
    result = benchmark.pedantic(lambda: experiment_fn(**kwargs), rounds=1, iterations=1)
    _RESULTS.append(result)
    return result


def pytest_terminal_summary(terminalreporter):
    """Print every reproduced figure after the benchmark table."""
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced paper figures")
    for result in _RESULTS:
        terminalreporter.write_line("")
        for line in result.render().splitlines():
            terminalreporter.write_line(line)
