"""Perf smoke for the session layer's plan cache.

The acceptance bar of the session API redesign: on a repeated-query
workload, prepared re-execution (plan-cache hit) must be at least
:data:`SPEEDUP_BAR` times faster than running the same statement cold
through parse → bind → plan every time.  Run with
``pytest -m perf benchmarks/test_perf_session.py``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.api import connect
from repro.engine.schema import TableSchema
from repro.engine.types import DataType, Store

#: Prepared re-execution must beat the cold pipeline by at least this factor.
SPEEDUP_BAR = 2.0

NUM_ROWS = 5_000
REPEATS = 500

#: The canonical prepared-statement workload: an OLTP point lookup repeated
#: with changing parameters.  Execution is an index probe (~20 us), so the
#: parse+bind+plan work the cache elides is clearly visible (~4x here).
SQL = "SELECT id, revenue, region FROM sales WHERE id = ?"


def build_session():
    schema = TableSchema.build(
        "sales",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("revenue", DataType.DOUBLE),
            ("quantity", DataType.INTEGER),
        ],
        primary_key=["id"],
    )
    rng = random.Random(11)
    session = connect()
    session.create_table(schema, Store.ROW)
    session.load_rows(
        "sales",
        [
            {
                "id": i,
                "region": f"region_{rng.randrange(16)}",
                "revenue": round(rng.uniform(0, 100), 2),
                "quantity": rng.randrange(1, 9),
            }
            for i in range(NUM_ROWS)
        ],
    )
    return session


def measure_cold_s(session) -> float:
    """Repeated execution with the parse and plan caches cleared every time."""
    start = time.perf_counter()
    for i in range(REPEATS):
        session.clear_caches()  # full parse -> bind -> plan pipeline each run
        session.sql(SQL, [i % NUM_ROWS])
    return time.perf_counter() - start


def measure_prepared_s(session) -> float:
    statement = session.prepare(SQL)
    statement.execute([0])  # warm the plan cache
    start = time.perf_counter()
    for i in range(REPEATS):
        statement.execute([i % NUM_ROWS])
    return time.perf_counter() - start


@pytest.mark.perf
def test_prepared_reexecution_beats_cold_parse_plan():
    session = build_session()
    cold_s = measure_cold_s(session)
    prepared_s = measure_prepared_s(session)
    hits = session.stats().plan_cache_hits
    assert hits >= REPEATS, f"plan cache did not serve the prepared runs ({hits})"
    speedup = cold_s / prepared_s
    assert speedup >= SPEEDUP_BAR, (
        f"prepared re-execution only {speedup:.2f}x faster than cold "
        f"parse+plan ({prepared_s * 1000 / REPEATS:.3f} ms vs "
        f"{cold_s * 1000 / REPEATS:.3f} ms per query); bar is {SPEEDUP_BAR}x"
    )


@pytest.mark.perf
def test_plan_cache_results_stay_correct():
    """The speedup must not come from skipping work: results identical."""
    session = build_session()
    cold = session.sql(SQL, [42])
    statement = session.prepare(SQL)
    for _ in range(3):
        assert statement.execute([42]).rows == cold.rows


if __name__ == "__main__":
    session = build_session()
    cold_s = measure_cold_s(session)
    prepared_s = measure_prepared_s(session)
    print(f"cold parse+plan+execute : {cold_s * 1000 / REPEATS:.3f} ms/query")
    print(f"prepared (plan cached)  : {prepared_s * 1000 / REPEATS:.3f} ms/query")
    print(f"speedup                 : {cold_s / prepared_s:.2f}x")
