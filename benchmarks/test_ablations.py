"""Ablation benchmarks for the design choices called out in DESIGN.md.

* device-constant scaling — the advisor's decisions should be invariant under
  a uniform re-scaling of the simulated device constants;
* calibrated vs. analytic cost model — calibration should not make the
  estimates worse;
* join-aware vs. independent table-level decisions — join-aware enumeration
  never yields a more expensive layout.
"""

import pytest

from repro.config import AdvisorConfig, DeviceModelConfig
from repro.core import CostModel, CostModelCalibrator, StorageAdvisor
from repro.core.advisor.table_level import TableLevelAdvisor
from repro.engine import HybridDatabase, Store
from repro.query import Workload, aggregate
from repro.workloads import (
    MixedWorkloadConfig,
    SyntheticTableConfig,
    build_mixed_workload,
    build_star_schema,
    build_star_workload,
    build_table,
)
from repro.workloads.star_schema import StarSchemaConfig


def _advisor_choice(device_config, workload, num_rows):
    database = HybridDatabase(device_config)
    build_table(SyntheticTableConfig(num_rows=num_rows)).load_into(database, Store.ROW)
    advisor = StorageAdvisor(device_config=device_config)
    recommendation = advisor.recommend(database, workload, include_partitioning=False)
    return recommendation.choice_for("facts")


def test_ablation_device_scaling_does_not_change_decisions(benchmark):
    """Uniformly scaling every device constant must not flip any decision."""
    table = build_table(SyntheticTableConfig(num_rows=8_000))

    def run():
        choices = {}
        for fraction in (0.0, 0.05):
            workload = build_mixed_workload(
                table.roles, MixedWorkloadConfig(num_queries=150, olap_fraction=fraction)
            )
            baseline = _advisor_choice(DeviceModelConfig(), workload, 8_000)
            scaled = _advisor_choice(DeviceModelConfig().scaled(3.0), workload, 8_000)
            choices[fraction] = (baseline, scaled)
        return choices

    choices = benchmark.pedantic(run, rounds=1, iterations=1)
    for baseline, scaled in choices.values():
        assert baseline == scaled


def test_ablation_calibration_improves_estimates(benchmark):
    """The calibrated cost model estimates at least as well as the analytic one."""
    table = build_table(SyntheticTableConfig(num_rows=15_000))
    query = aggregate("facts").sum("kf_0").avg("kf_1").group_by("grp_0").build()

    def run():
        report = CostModelCalibrator(sizes=(1_000, 3_000, 8_000)).calibrate()
        calibrated = CostModel(parameters=report.parameters)
        analytic = CostModel()
        errors = {"calibrated": 0.0, "analytic": 0.0}
        for store in Store:
            database = HybridDatabase()
            build_table(SyntheticTableConfig(num_rows=15_000)).load_into(database, store)
            actual = database.execute(query).runtime_ms
            profiles = CostModel.profiles_from_catalog(database.catalog)
            for name, model in (("calibrated", calibrated), ("analytic", analytic)):
                estimate = model.estimate_query_ms(query, {"facts": store}, profiles)
                errors[name] += abs(estimate - actual) / actual
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    assert errors["calibrated"] <= errors["analytic"] * 1.05
    assert errors["calibrated"] < 0.4


def test_ablation_join_aware_enumeration_is_never_worse(benchmark):
    """Join-aware group optimisation must not produce a costlier layout than
    optimising every table independently."""
    star = build_star_schema(StarSchemaConfig(fact_rows=10_000, dimension_rows=500))
    workload = build_star_workload(star, num_queries=150, olap_fraction=0.05)

    def run():
        database = HybridDatabase()
        star_copy = build_star_schema(StarSchemaConfig(fact_rows=10_000, dimension_rows=500))
        star_copy.load_into(database)
        cost_model = CostModel()
        profiles = CostModel.profiles_from_catalog(database.catalog)
        joint = TableLevelAdvisor(cost_model).recommend(workload, profiles)
        # Independent decisions: optimise each table against its own queries only.
        independent = {}
        for table in ("fact", "dim"):
            result = TableLevelAdvisor(cost_model).recommend(
                Workload(
                    [q for q in workload if q.tables == (table,)] or
                    workload.queries_for_table(table)
                ),
                profiles,
            )
            independent[table] = result.assignment.get(table, Store.COLUMN)
        joint_cost = cost_model.estimate_workload_ms(workload, joint.assignment, profiles)
        independent_cost = cost_model.estimate_workload_ms(workload, independent, profiles)
        return joint_cost, independent_cost

    joint_cost, independent_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert joint_cost <= independent_cost * 1.001
