"""Benchmark: Figure 7 — quality of the table-level store recommendation."""

from conftest import run_and_record

from repro.bench.experiments.fig7_table_level import run_fig7a, run_fig7b


def test_fig7a_single_table_recommendation(benchmark):
    result = run_and_record(
        benchmark,
        run_fig7a,
        fractions=(0.0, 0.0125, 0.025, 0.0375, 0.05),
        num_rows=20_000,
        num_queries=300,
    )
    series = result.series[0]
    first, last = series.points[0], series.points[-1]
    assert first.values["row_only_s"] < first.values["column_only_s"]
    assert last.values["column_only_s"] < last.values["row_only_s"]
    for point in series.points:
        best = min(point.values["row_only_s"], point.values["column_only_s"])
        assert point.values["advisor_s"] <= best * 1.10


def test_fig7b_join_recommendation(benchmark):
    result = run_and_record(
        benchmark,
        run_fig7b,
        fractions=(0.0, 0.0125, 0.025, 0.0375, 0.05),
        fact_rows=40_000,
        dimension_rows=1_000,
        num_queries=300,
    )
    series = result.series[0]
    first, last = series.points[0], series.points[-1]
    assert first.values["row_only_s"] < first.values["column_only_s"]
    assert last.values["column_only_s"] < last.values["row_only_s"]
    # Away from the crossover the advisor matches the better store; near the
    # crossover it may (as in the paper) pick the slightly slower one, but the
    # overhead of that miss stays small relative to the worse baseline.
    for point in (first, last):
        best = min(point.values["row_only_s"], point.values["column_only_s"])
        assert point.values["advisor_s"] <= best * 1.10
    for point in series.points:
        worst = max(point.values["row_only_s"], point.values["column_only_s"])
        assert point.values["advisor_s"] <= worst
