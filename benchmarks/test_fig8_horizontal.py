"""Benchmark: Figure 8 — workload runtime for different horizontal partitionings."""

from conftest import run_and_record

from repro.bench.experiments.fig8_horizontal import run_fig8


def test_fig8_horizontal_partitioning_sweep(benchmark):
    result = run_and_record(
        benchmark,
        run_fig8,
        row_store_fractions=(0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20),
        num_rows=20_000,
        num_queries=400,
        olap_fraction=0.05,
        hot_fraction=0.10,
    )
    series = result.series[0]
    runtimes = dict(zip(series.xs(), series.column("runtime_s")))
    minimum_fraction = min(runtimes, key=runtimes.get)
    # The minimum of the sweep lies at (or right next to) the hot 10 %.
    assert abs(minimum_fraction - 0.10) <= 0.025
    # Shrinking the row-store partition below the hot data is clearly worse.
    assert runtimes[0.0] > 2 * runtimes[0.10]
    # The advisor's own heuristic identifies roughly the hot 10 %.
    assert abs(result.metadata["advisor_row_store_fraction"] - 0.10) < 0.03
