"""Benchmark: Figure 9 — benefit of vertical partitioning (OLAP and OLTP settings)."""

from conftest import run_and_record

from repro.bench.experiments.fig9_vertical import run_fig9a, run_fig9b

FRACTIONS = (0.0, 0.00625, 0.0125, 0.01875, 0.025)


def _check_vertical_benefit(result):
    series = result.series[0]
    pure_oltp = series.points[0]
    # Pure OLTP: the unpartitioned row store is the best layout (paper).
    assert pure_oltp.values["row_only_s"] <= pure_oltp.values["vertical_partitioned_s"]
    # Every mixed workload: the vertical partitioning beats both pure layouts.
    for point in series.points[2:]:
        assert point.values["vertical_partitioned_s"] < point.values["row_only_s"]
        assert point.values["vertical_partitioned_s"] < point.values["column_only_s"]


def test_fig9a_vertical_partitioning_olap_setting(benchmark):
    result = run_and_record(
        benchmark, run_fig9a, fractions=FRACTIONS, num_rows=20_000, num_queries=300
    )
    _check_vertical_benefit(result)


def test_fig9b_vertical_partitioning_oltp_setting(benchmark):
    result = run_and_record(
        benchmark, run_fig9b, fractions=FRACTIONS, num_rows=20_000, num_queries=300
    )
    _check_vertical_benefit(result)
