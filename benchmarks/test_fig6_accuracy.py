"""Benchmark: Figure 6 — accuracy of the cost model's runtime estimation."""

from conftest import run_and_record

from repro.bench.experiments.fig6_accuracy import run_fig6a, run_fig6b


def test_fig6a_estimation_accuracy_data_scale(benchmark):
    result = run_and_record(
        benchmark, run_fig6a, sizes=(5_000, 10_000, 20_000, 40_000), num_aggregates=2
    )
    series = result.series[0]
    # Estimates must stay close to the measured (simulated) runtimes.
    assert max(series.column("row_error")) < 0.25
    assert max(series.column("column_error")) < 0.25
    # Linear trend: the largest scale is roughly 8x the smallest (40k vs 5k rows).
    row = series.column("row_actual_ms")
    assert row[-1] > 4 * row[0]


def test_fig6b_estimation_accuracy_number_of_aggregates(benchmark):
    result = run_and_record(
        benchmark, run_fig6b, aggregate_counts=(1, 2, 3, 4, 5), num_rows=20_000
    )
    series = result.series[0]
    assert max(series.column("row_error")) < 0.30
    assert max(series.column("column_error")) < 0.30
    # Runtimes increase with the number of aggregates for both stores.
    assert series.column("column_actual_ms") == sorted(series.column("column_actual_ms"))
