#!/usr/bin/env sh
# Full verification gate in one command:
#
#   tier-1   — the complete test + figure-reproduction suite (pytest from the
#              repo root, exactly the ROADMAP command),
#   perf     — the wall-clock regression smokes against BENCH_pipeline.json
#              plus the session plan-cache smoke (prepared re-execution must
#              beat cold parse+plan by >= 2x),
#   bench    — the standalone bench-JSON comparator: re-measures every
#              scenario recorded in BENCH_pipeline.json and fails when any
#              regresses >2x versus the committed baseline; the aggregate-
#              pushdown scenarios additionally gate their live speedup over
#              the decode-then-reduce reference (grouped >=3x, zero-scan
#              MIN/MAX >=20x), the delta/main write split gates per-row
#              inserts at >=5x over the inline path, the 1M-row shard
#              projections gate >=2x over serial at fan-out 4, and the
#              matview serve gates >=5x over recompute-per-query,
#   matview  — the materialized-view suite, standalone: refresh machinery,
#              session serving/EXPLAIN/advisor tests, the matview-vs-base
#              differential fuzzer and the serve-vs-recompute perf gates
#              (also runs inside tier-1; this run proves the marker works),
#   shard    — the shard-parallel scatter/gather suite, standalone: decision
#              staleness, charge bit-identity vs the serial reference, the
#              sharded differential fuzzer, spawn-vs-fork determinism and
#              the 1M-row projection gates (also runs inside tier-1; this
#              run proves the marker works),
#   fuzz     — the seeded differential suites, standalone (cross-store,
#              session-vs-legacy, pruning-vs-decode, and delta-vs-inline;
#              they also run inside tier-1; this run proves the marker works),
#   faults   — the crash-point recovery differential suite: a fault-injection
#              harness crashes the WAL/merge/checkpoint paths at every
#              declared crash point and recovery must land on the committed
#              prefix,
#   resilience — the process-fault matrix over the supervised shard pool:
#              worker kill/hang, poisoned results, shm unlink races, shm
#              bit flips and matview refresh crashes must all yield rows
#              and charges bit-identical to the serial reference, with
#              retries, individual worker replacement, deadline
#              cancellation and a clean shared-memory segment audit,
#   integrity — the corruption-fault matrix: flipped/truncated checkpoint
#              snapshots are detected (never restored from), in-memory
#              code-array flips are quarantined with typed errors naming
#              the exact table/partition/column, WAL-backed repair restores
#              rows and charges bit-identical, and checksum verification
#              bills zero simulated cost (the delta_insert_100k_ms bench
#              gate above doubles as the checksum-overhead guard),
#   examples — the session-API examples as executable documentation.
#
# Usage, from the repository root or this directory:
#   benchmarks/run_checks.sh
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
PYTHONPATH="$root/src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1: full suite =="
python -m pytest -x -q

echo "== perf smoke: BENCH_pipeline.json + plan-cache gates =="
python -m pytest -m perf -q benchmarks

echo "== bench comparator: committed BENCH_pipeline.json baseline =="
python benchmarks/compare_bench.py \
    --fail-under grouped_agg_pushdown_100k_ms=3 \
    --fail-under minmax_zero_scan_100k_ms=20 \
    --fail-under delta_insert_100k_ms=5 \
    --fail-under shard_grouped_agg_1m_ms=2 \
    --fail-under shard_scan_1m_ms=2 \
    --fail-under matview_grouped_agg_100k_ms=5

echo "== matview: materialized-view suite + serve-vs-recompute gates =="
python -m pytest -m matview -q tests benchmarks

echo "== shard: scatter/gather differential + projection gates =="
python -m pytest -m shard -q tests benchmarks

echo "== fuzz: differential suites =="
python -m pytest -m fuzz -q tests

echo "== faults: crash-point recovery suite =="
python -m pytest -m faultinject -q tests

echo "== resilience: process-fault matrix + supervised pool + deadlines =="
python -m pytest -m resilience -q tests

echo "== integrity: corruption matrix + scrub/quarantine/repair =="
python -m pytest -m integrity -q tests

echo "== examples: session API smoke =="
python examples/session_api.py > /dev/null
python examples/quickstart.py > /dev/null
echo "examples ran clean."

echo "All checks passed."
