#!/usr/bin/env sh
# Full verification gate in one command:
#
#   tier-1   — the complete test + figure-reproduction suite (pytest from the
#              repo root, exactly the ROADMAP command),
#   perf     — the wall-clock regression smoke against BENCH_pipeline.json,
#   fuzz     — the seeded cross-store differential fuzz suite, standalone
#              (it also runs inside tier-1; this run proves the marker works).
#
# Usage, from the repository root or this directory:
#   benchmarks/run_checks.sh
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
PYTHONPATH="$root/src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1: full suite =="
python -m pytest -x -q

echo "== perf smoke: BENCH_pipeline.json gates =="
python -m pytest -m perf -q benchmarks/test_perf_pipeline.py

echo "== fuzz: cross-store differential suite =="
python -m pytest -m fuzz -q tests

echo "All checks passed."
