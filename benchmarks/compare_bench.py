#!/usr/bin/env python
"""Bench-JSON comparator: re-measure every recorded scenario and gate it.

Re-runs each wall-clock scenario recorded in ``BENCH_pipeline.json`` (the
``recorded`` section) on the current tree and exits non-zero when any of
them regresses more than ``REGRESSION_FACTOR`` (2x) against the committed
numbers.  Sub-millisecond recordings get the same noise floors as the
pytest gates, so a loaded machine does not flake the comparator.

``--fail-under <scenario>=<ratio>`` additionally gates a scenario's *live*
speedup: the scenario and its reference baseline are both re-measured on the
current tree (the pushdown scenarios re-run decode-then-reduce behind the
disable toggles; other scenarios fall back to the committed
``seed_baseline``) and the comparator fails when ``baseline / measured``
drops below *ratio*.  Repeatable.

Usage, from the repository root::

    PYTHONPATH=src python benchmarks/compare_bench.py
    PYTHONPATH=src python benchmarks/compare_bench.py \\
        --fail-under grouped_agg_pushdown_100k_ms=3 \\
        --fail-under minmax_zero_scan_100k_ms=20

``benchmarks/run_checks.sh`` runs it as part of the full verification gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from test_perf_pipeline import (  # noqa: E402
    BASELINE_MEASUREMENTS,
    BENCH_FILE,
    MEASUREMENTS,
    MIN_AGG_BUDGET_MS,
    MIN_SCAN_BUDGET_MS,
    REGRESSION_FACTOR,
    SCAN_SCENARIOS,
    SHARD_BENCH_SCENARIOS,
)

#: Per-scenario noise floor, in the scenario's own unit.
_FLOORS = {
    "agg_100k_column_ms": MIN_AGG_BUDGET_MS,
    "agg_100k_row_ms": MIN_AGG_BUDGET_MS,
    "group_by_string_100k_ms": MIN_AGG_BUDGET_MS,
    "group_by_string_100k_rowstore_ms": MIN_AGG_BUDGET_MS,
    "grouped_agg_pushdown_100k_ms": MIN_AGG_BUDGET_MS,
    "minmax_zero_scan_100k_ms": MIN_AGG_BUDGET_MS,
    # 100k per-row inserts recorded in the hundreds of ms; a 50ms floor keeps
    # an absurdly fast machine from tripping the 2x budget on noise alone.
    "delta_insert_100k_ms": 50.0,
    # View serving is a sub-0.1ms plan-cache hit + result copy; the agg
    # floor keeps loaded machines from flaking the 2x budget.
    "matview_grouped_agg_100k_ms": MIN_AGG_BUDGET_MS,
    **{key: MIN_SCAN_BUDGET_MS for key in SCAN_SCENARIOS},
    # The shard projections are deterministic simulated runtimes: no noise,
    # no floor needed.
    **{key: 0.0 for key in SHARD_BENCH_SCENARIOS},
}


def _parse_fail_under(arguments) -> dict:
    gates = {}
    for argument in arguments or ():
        scenario, _, ratio = argument.partition("=")
        if not ratio:
            raise SystemExit(
                f"--fail-under expects <scenario>=<ratio>, got {argument!r}"
            )
        if scenario not in MEASUREMENTS:
            raise SystemExit(f"--fail-under: unknown scenario {scenario!r}")
        gates[scenario] = float(ratio)
    return gates


def _check_speedups(gates: dict, payload: dict, failures: list) -> None:
    for scenario, ratio in sorted(gates.items()):
        measured = MEASUREMENTS[scenario]()
        measure_baseline = BASELINE_MEASUREMENTS.get(scenario)
        if measure_baseline is not None:
            baseline = measure_baseline()
            source = "live baseline"
        else:
            baseline = payload.get("seed_baseline", {}).get(scenario)
            source = "committed seed_baseline"
            if baseline is None:
                print(f"  ?? {scenario}: no baseline available, skipping")
                continue
        speedup = baseline / measured if measured else float("inf")
        verdict = "ok" if speedup >= ratio else "TOO SLOW"
        print(
            f"  {verdict:>9}  {scenario}: speedup {speedup:.1f}x "
            f"(need >= {ratio:g}x; measured {measured:.3f}, "
            f"{source} {baseline:.3f})"
        )
        if speedup < ratio:
            failures.append(f"{scenario} (speedup)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under", action="append", metavar="SCENARIO=RATIO",
        help="fail when a scenario's live speedup over its reference "
             "baseline drops below RATIO (repeatable)",
    )
    options = parser.parse_args(argv)
    gates = _parse_fail_under(options.fail_under)

    payload = json.loads(BENCH_FILE.read_text())
    recorded = payload["recorded"]
    failures = []
    for key, committed in sorted(recorded.items()):
        measure = MEASUREMENTS.get(key)
        if measure is None:
            print(f"  ?? {key}: no measurement registered, skipping")
            continue
        measured = measure()
        budget = max(committed * REGRESSION_FACTOR, _FLOORS.get(key, 0.0))
        verdict = "ok" if measured <= budget else "REGRESSED"
        print(
            f"  {verdict:>9}  {key}: measured {measured:.3f}, "
            f"committed {committed:.3f}, budget {budget:.3f}"
        )
        if measured > budget:
            failures.append(key)
    _check_speedups(gates, payload, failures)
    if failures:
        print(f"bench comparator: {len(failures)} gate(s) failed: "
              f"{', '.join(failures)}")
        return 1
    checked = len(recorded) + len(gates)
    print(f"bench comparator: all {checked} gate(s) passed "
          f"(regression budget {REGRESSION_FACTOR}x).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
