#!/usr/bin/env python
"""Bench-JSON comparator: re-measure every recorded scenario and gate it.

Re-runs each wall-clock scenario recorded in ``BENCH_pipeline.json`` (the
``recorded`` section) on the current tree and exits non-zero when any of
them regresses more than ``REGRESSION_FACTOR`` (2x) against the committed
numbers.  Sub-millisecond recordings get the same noise floors as the
pytest gates, so a loaded machine does not flake the comparator.

Usage, from the repository root::

    PYTHONPATH=src python benchmarks/compare_bench.py

``benchmarks/run_checks.sh`` runs it as part of the full verification gate.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from test_perf_pipeline import (  # noqa: E402
    BENCH_FILE,
    MEASUREMENTS,
    MIN_AGG_BUDGET_MS,
    MIN_SCAN_BUDGET_MS,
    REGRESSION_FACTOR,
    SCAN_SCENARIOS,
)

#: Per-scenario noise floor, in the scenario's own unit.
_FLOORS = {
    "agg_100k_column_ms": MIN_AGG_BUDGET_MS,
    "agg_100k_row_ms": MIN_AGG_BUDGET_MS,
    "group_by_string_100k_ms": MIN_AGG_BUDGET_MS,
    "group_by_string_100k_rowstore_ms": MIN_AGG_BUDGET_MS,
    **{key: MIN_SCAN_BUDGET_MS for key in SCAN_SCENARIOS},
}


def main() -> int:
    payload = json.loads(BENCH_FILE.read_text())
    recorded = payload["recorded"]
    failures = []
    for key, committed in sorted(recorded.items()):
        measure = MEASUREMENTS.get(key)
        if measure is None:
            print(f"  ?? {key}: no measurement registered, skipping")
            continue
        measured = measure()
        budget = max(committed * REGRESSION_FACTOR, _FLOORS.get(key, 0.0))
        verdict = "ok" if measured <= budget else "REGRESSED"
        print(
            f"  {verdict:>9}  {key}: measured {measured:.3f}, "
            f"committed {committed:.3f}, budget {budget:.3f}"
        )
        if measured > budget:
            failures.append(key)
    if failures:
        print(f"bench comparator: {len(failures)} scenario(s) regressed >"
              f"{REGRESSION_FACTOR}x: {', '.join(failures)}")
        return 1
    print(f"bench comparator: all {len(recorded)} scenarios within "
          f"{REGRESSION_FACTOR}x of the committed baseline.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
