"""Perf smoke test for the vectorized columnar batch pipeline.

``BENCH_pipeline.json`` (committed next to this file) records the wall-clock
of the read-pipeline microbenchmarks on the machine that produced it:

* ``seed_baseline`` — the pipeline *before* the optimisation that the
  scenario pins: the scalar row-at-a-time pipeline for the ``agg_100k`` and
  ``fig10`` scenarios (PR 1), the decode-up-front batch pipeline for the
  ``group_by_string_100k`` scenario (late materialization),
* ``recorded`` — the current pipeline at the time the optimisation landed,
* ``speedup`` — the ratio of the two.

The tests here re-measure the hot benchmarks and fail when they regress more
than :data:`REGRESSION_FACTOR` against the recorded baseline, so a future
change that silently de-vectorizes a hot path shows up in CI.  The
string-group-by gate additionally pins the late-materialization acceptance
bar: the recorded speedup over the decode-up-front pipeline must stay >= 2x.
Run them explicitly with ``pytest -m perf benchmarks/test_perf_pipeline.py``.
"""

from __future__ import annotations

import json
import pathlib
import random
import time

import pytest

from repro.engine.database import HybridDatabase
from repro.engine.schema import TableSchema
from repro.engine.types import DataType, Store
from repro.query.builder import aggregate

BENCH_FILE = pathlib.Path(__file__).with_name("BENCH_pipeline.json")

#: A perf benchmark fails when it is more than this factor slower than the
#: wall-clock recorded in ``BENCH_pipeline.json``.
REGRESSION_FACTOR = 2.0

#: Noise floor for the sub-millisecond aggregation gates: on a slower or
#: loaded machine a 2x factor on a ~0.05 ms recording would flake, so the
#: budget never drops below this.  The scalar pipeline measured ~30 ms, so a
#: true de-vectorization still trips the gate by a wide margin.
MIN_AGG_BUDGET_MS = 5.0

AGG_ROWS = 100_000

#: Distinct string keys of the group-by scenario: enough that re-sorting the
#: decoded strings (the pre-late-materialization np.unique path) dominates.
GROUP_BY_DISTINCT = 256


def build_aggregation_database(store: Store, distinct_regions: int = 8) -> HybridDatabase:
    schema = TableSchema.build(
        "facts",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("amount", DataType.DOUBLE),
            ("quantity", DataType.INTEGER),
        ],
        primary_key=["id"],
    )
    rng = random.Random(42)
    rows = [
        {
            "id": i,
            "region": f"region_{rng.randrange(distinct_regions):04d}",
            "amount": round(rng.uniform(0, 1000), 2),
            "quantity": rng.randrange(1, 50),
        }
        for i in range(AGG_ROWS)
    ]
    database = HybridDatabase()
    database.create_table(schema, store=store)
    database.load_rows("facts", rows)
    return database


def best_of(callable_, repetitions: int = 5) -> float:
    """Best wall-clock (seconds) of *repetitions* runs."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def measure_aggregation_ms(store: Store) -> float:
    """Wall-clock of the 100k-row single-column SUM through the executor."""
    database = build_aggregation_database(store)
    query = aggregate("facts").sum("amount").build()
    return best_of(lambda: database.execute(query)) * 1000.0


def measure_string_group_by_ms() -> float:
    """Wall-clock of a 100k-row group-by on a dictionary-encoded string column.

    The late-materialized pipeline factorizes the carried codes in O(n); the
    decode-up-front pipeline gathered 100k strings and re-sorted them with
    ``np.unique``.
    """
    database = build_aggregation_database(Store.COLUMN, GROUP_BY_DISTINCT)
    query = aggregate("facts").count().group_by("region").build()
    return best_of(lambda: database.execute(query)) * 1000.0


def measure_string_group_by_rowstore_ms() -> float:
    """Wall-clock of the same 100k-row string group-by on the *row* store.

    The row store has no dictionary; its interning/factorization cache
    (``RowStoreTable.column_interned``) factorizes the strings once per table
    state, so repeated group-bys run on int codes instead of
    ``np.unique``-sorting 100k strings per query (~28 ms -> ~1 ms).
    ``best_of`` measures the warm path, which is what repeated queries pay.
    """
    database = build_aggregation_database(Store.ROW, GROUP_BY_DISTINCT)
    query = aggregate("facts").count().group_by("region").build()
    return best_of(lambda: database.execute(query)) * 1000.0


def measure_fig10_s() -> float:
    from repro.bench.experiments.fig10_tpch import run_fig10

    start = time.perf_counter()
    run_fig10(scale_factor=0.005, num_queries=2_000, olap_fraction=0.01)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def recorded():
    with BENCH_FILE.open() as handle:
        return json.load(handle)["recorded"]


@pytest.mark.perf
def test_agg_100k_column_store_has_not_regressed(recorded):
    measured_ms = measure_aggregation_ms(Store.COLUMN)
    budget_ms = max(recorded["agg_100k_column_ms"] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS)
    assert measured_ms <= budget_ms, (
        f"100k-row column-store aggregation took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms (recorded {recorded['agg_100k_column_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_agg_100k_row_store_has_not_regressed(recorded):
    measured_ms = measure_aggregation_ms(Store.ROW)
    budget_ms = max(recorded["agg_100k_row_ms"] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS)
    assert measured_ms <= budget_ms, (
        f"100k-row row-store aggregation took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms (recorded {recorded['agg_100k_row_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_string_group_by_has_not_regressed(recorded):
    measured_ms = measure_string_group_by_ms()
    budget_ms = max(
        recorded["group_by_string_100k_ms"] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS
    )
    assert measured_ms <= budget_ms, (
        f"100k-row string group-by took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms "
        f"(recorded {recorded['group_by_string_100k_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_string_group_by_rowstore_has_not_regressed(recorded):
    measured_ms = measure_string_group_by_rowstore_ms()
    budget_ms = max(
        recorded["group_by_string_100k_rowstore_ms"] * REGRESSION_FACTOR,
        MIN_AGG_BUDGET_MS,
    )
    assert measured_ms <= budget_ms, (
        f"100k-row row-store string group-by took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms "
        f"(recorded {recorded['group_by_string_100k_rowstore_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_string_group_by_rowstore_speedup_is_recorded():
    """The interning-cache acceptance bar: >=2x over per-query np.unique."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["group_by_string_100k_rowstore_ms"] >= 2.0


@pytest.mark.perf
def test_string_group_by_speedup_is_recorded():
    """The late-materialization acceptance bar: >=2x over decode-up-front."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["group_by_string_100k_ms"] >= 2.0


@pytest.mark.perf
def test_fig10_scenario_has_not_regressed(recorded):
    measured_s = measure_fig10_s()
    budget_s = recorded["fig10_s"] * REGRESSION_FACTOR
    assert measured_s <= budget_s, (
        f"fig10 TPC-H scenario took {measured_s:.2f}s, "
        f"budget is {budget_s:.2f}s (recorded {recorded['fig10_s']:.2f}s)"
    )


if __name__ == "__main__":
    # Re-record the "recorded" section (run after intentional perf changes):
    #   PYTHONPATH=src python benchmarks/test_perf_pipeline.py
    payload = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {}
    payload["recorded"] = {
        "agg_100k_column_ms": measure_aggregation_ms(Store.COLUMN),
        "agg_100k_row_ms": measure_aggregation_ms(Store.ROW),
        "group_by_string_100k_ms": measure_string_group_by_ms(),
        "group_by_string_100k_rowstore_ms": measure_string_group_by_rowstore_ms(),
        "fig10_s": measure_fig10_s(),
    }
    baseline = payload.get("seed_baseline")
    if baseline:
        payload["speedup"] = {
            key: baseline[key] / value
            for key, value in payload["recorded"].items()
            if baseline.get(key)
        }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
