"""Perf smoke test for the vectorized columnar batch pipeline.

``BENCH_pipeline.json`` (committed next to this file) records the wall-clock
of the read-pipeline microbenchmarks on the machine that produced it:

* ``seed_baseline`` — the pipeline *before* the optimisation that the
  scenario pins: the scalar row-at-a-time pipeline for the ``agg_100k`` and
  ``fig10`` scenarios (PR 1), the decode-up-front batch pipeline for the
  ``group_by_string_100k`` scenario (late materialization), the
  decode-and-compare scan path (code domain + zone pruning disabled) for the
  ``selective_scan_100k`` scenarios, and the per-row ``random.Random`` loop
  for ``tpch_datagen``,
* ``recorded`` — the current pipeline at the time the optimisation landed,
* ``speedup`` — the ratio of the two.

The tests here re-measure the hot benchmarks and fail when they regress more
than :data:`REGRESSION_FACTOR` against the recorded baseline, so a future
change that silently de-vectorizes a hot path shows up in CI.  The
``shard_*_1m_ms`` scenarios are *simulated* runtimes rather than wall-clock:
a real scatter/gather over the 1M-row table produces the serially-charged
``CostBreakdown`` and per-shard row counts, and ``projected_parallel_ms``
re-prices them for the 4-worker crew — deterministic on any machine, gated
at >= 2x over the serial reference.  The
string-group-by gate additionally pins the late-materialization acceptance
bar (>= 2x over decode-up-front), and the selective-scan gates pin the
code-domain/zone-map acceptance bar: the partitioned narrow-range scan must
stay >= 5x faster than the decode-and-compare path.  Run them explicitly
with ``pytest -m perf benchmarks/test_perf_pipeline.py``;
``benchmarks/compare_bench.py`` re-measures every recorded scenario as a
standalone comparator.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import random
import time

import pytest

from repro.engine.column_store import (
    ColumnStoreTable,
    code_domain_disabled,
    delta_writes_disabled,
)
from repro.engine.database import HybridDatabase
from repro.engine.executor.agg_pushdown import aggregate_pushdown_disabled
from repro.engine.partitioning import HorizontalPartitionSpec, TablePartitioning
from repro.engine.schema import TableSchema
from repro.engine.table import StoredTable
from repro.engine.types import DataType, Store
from repro.engine.zonemap import zone_pruning_disabled
from repro.query.builder import aggregate, select
from repro.query.predicates import Between, Or, ge

BENCH_FILE = pathlib.Path(__file__).with_name("BENCH_pipeline.json")

#: A perf benchmark fails when it is more than this factor slower than the
#: wall-clock recorded in ``BENCH_pipeline.json``.
REGRESSION_FACTOR = 2.0

#: Noise floor for the sub-millisecond aggregation gates: on a slower or
#: loaded machine a 2x factor on a ~0.05 ms recording would flake, so the
#: budget never drops below this.  The scalar pipeline measured ~30 ms, so a
#: true de-vectorization still trips the gate by a wide margin.
MIN_AGG_BUDGET_MS = 5.0

#: Noise floor for the selective-scan gates (recordings are ~0.1-0.5 ms; the
#: decode-and-compare path measures ~5-10 ms, far above this).
MIN_SCAN_BUDGET_MS = 2.0

AGG_ROWS = 100_000

#: Distinct string keys of the group-by scenario: enough that re-sorting the
#: decoded strings (the pre-late-materialization np.unique path) dominates.
GROUP_BY_DISTINCT = 256

SCAN_ROWS = 100_000


def build_aggregation_database(store: Store, distinct_regions: int = 8) -> HybridDatabase:
    schema = TableSchema.build(
        "facts",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("amount", DataType.DOUBLE),
            ("quantity", DataType.INTEGER),
        ],
        primary_key=["id"],
    )
    rng = random.Random(42)
    rows = [
        {
            "id": i,
            "region": f"region_{rng.randrange(distinct_regions):04d}",
            "amount": round(rng.uniform(0, 1000), 2),
            "quantity": rng.randrange(1, 50),
        }
        for i in range(AGG_ROWS)
    ]
    database = HybridDatabase()
    database.create_table(schema, store=store)
    database.load_rows("facts", rows)
    return database


def best_of(callable_, repetitions: int = 5) -> float:
    """Best wall-clock (seconds) of *repetitions* runs."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def measure_aggregation_ms(store: Store) -> float:
    """Wall-clock of the 100k-row single-column SUM through the executor."""
    database = build_aggregation_database(store)
    query = aggregate("facts").sum("amount").build()
    return best_of(lambda: database.execute(query)) * 1000.0


def measure_string_group_by_ms() -> float:
    """Wall-clock of a 100k-row group-by on a dictionary-encoded string column.

    The late-materialized pipeline factorizes the carried codes in O(n); the
    decode-up-front pipeline gathered 100k strings and re-sorted them with
    ``np.unique``.
    """
    database = build_aggregation_database(Store.COLUMN, GROUP_BY_DISTINCT)
    query = aggregate("facts").count().group_by("region").build()
    return best_of(lambda: database.execute(query)) * 1000.0


def measure_string_group_by_rowstore_ms() -> float:
    """Wall-clock of the same 100k-row string group-by on the *row* store.

    The row store has no dictionary; its interning/factorization cache
    (``RowStoreTable.column_interned``) factorizes the strings once per table
    state, so repeated group-bys run on int codes instead of
    ``np.unique``-sorting 100k strings per query (~28 ms -> ~1 ms).
    ``best_of`` measures the warm path, which is what repeated queries pay.
    """
    database = build_aggregation_database(Store.ROW, GROUP_BY_DISTINCT)
    query = aggregate("facts").count().group_by("region").build()
    return best_of(lambda: database.execute(query)) * 1000.0


def measure_fig10_s() -> float:
    from repro.bench.experiments.fig10_tpch import run_fig10

    start = time.perf_counter()
    run_fig10(scale_factor=0.005, num_queries=2_000, olap_fraction=0.01)
    return time.perf_counter() - start


def measure_tpch_datagen_ms() -> float:
    """Wall-clock of generating the sf=0.01 TPC-H data set (~78k rows).

    The vectorized generator builds each random column with one numpy
    ``Generator`` draw; the seed baseline is the per-row ``random.Random``
    loop it replaced.
    """
    from repro.workloads.tpch.datagen import TpchGenerator

    TpchGenerator(scale_factor=0.001).generate_all()  # warm imports
    return best_of(
        lambda: TpchGenerator(scale_factor=0.01).generate_all(), repetitions=3
    ) * 1000.0


# -- aggregate pushdown (zero-scan + code-domain grouped aggregation) ------------------


@contextlib.contextmanager
def _decode_up_front():
    """Force every column read to decode (the pre-late-materialization shape).

    Combined with ``aggregate_pushdown_disabled()`` this is the
    decode-then-reduce reference the pushdown speedups are recorded against.
    """
    original = StoredTable.column_batched

    def forced(self, column, positions=None, accountant=None):
        return self.column_array(column, positions, accountant)

    StoredTable.column_batched = forced
    try:
        yield
    finally:
        StoredTable.column_batched = original


_AGG_DATABASES: dict = {}


def _pushdown_database() -> HybridDatabase:
    """The 100k-row column-store fact table (cached; the scenarios only read)."""
    cached = _AGG_DATABASES.get("column")
    if cached is None:
        cached = build_aggregation_database(Store.COLUMN, GROUP_BY_DISTINCT)
        _AGG_DATABASES["column"] = cached
    return cached


def _grouped_pushdown_query():
    return aggregate("facts").sum("amount").count().group_by("region").build()


def _minmax_query():
    return (
        aggregate("facts")
        .min("region").max("region").min("amount").max("quantity").count()
        .build()
    )


def measure_grouped_agg_pushdown_ms(decode_baseline: bool = False) -> float:
    """Wall-clock of a 100k-row SUM+COUNT group-by on encoded key + value.

    The pushdown path groups on the raw dictionary codes and sums in the
    dictionary domain; ``decode_baseline=True`` measures the same query with
    pushdown disabled and every column decoded up front (decode-then-reduce).
    """
    database = _pushdown_database()
    query = _grouped_pushdown_query()
    runner = lambda: database.execute(query)  # noqa: E731
    if decode_baseline:
        with aggregate_pushdown_disabled(), _decode_up_front():
            return best_of(runner) * 1000.0
    return best_of(runner) * 1000.0


def measure_minmax_zero_scan_ms(decode_baseline: bool = False) -> float:
    """Wall-clock of ungrouped MIN/MAX/COUNT with no predicate (zero-scan).

    The pushdown path answers from the zone synopses without touching a
    row; the baseline (pushdown disabled) collects and reduces the value
    arrays — including a scalar fold over 100k decoded strings.
    """
    database = _pushdown_database()
    query = _minmax_query()
    runner = lambda: database.execute(query)  # noqa: E731
    if decode_baseline:
        with aggregate_pushdown_disabled(), _decode_up_front():
            return best_of(runner) * 1000.0
    return best_of(runner) * 1000.0


#: Aggregate-pushdown scenarios and their acceptance bars.
PUSHDOWN_SCENARIOS = {
    "grouped_agg_pushdown_100k_ms": (measure_grouped_agg_pushdown_ms, 3.0),
    "minmax_zero_scan_100k_ms": (measure_minmax_zero_scan_ms, 20.0),
}


# -- per-row writes (delta/main split) -------------------------------------------------

DELTA_INSERT_ROWS = 100_000


def measure_delta_insert_ms(inline_baseline: bool = False) -> float:
    """Wall-clock of 100k per-row column-store inserts, plus one final merge.

    Per-statement writes are the write-optimised delta's reason to exist:
    each append lands in the uncompressed delta in O(1), and the dictionary
    rebuild is paid once at merge time.  ``inline_baseline=True`` measures
    the identical loop under ``delta_writes_disabled()`` — the pre-split
    path, which re-extends the compressed codes array on every statement.
    One repetition: the scenario is a 100k-statement stream, not a warm read.
    """
    schema = TableSchema.build(
        "delta_bench",
        [
            ("id", DataType.INTEGER),
            ("region", DataType.VARCHAR),
            ("amount", DataType.DOUBLE),
        ],
        primary_key=["id"],
    )
    rng = random.Random(7)
    rows = [
        {
            "id": i,
            "region": f"r{i % 64:03d}",
            "amount": round(rng.uniform(0.0, 100.0), 2),
        }
        for i in range(DELTA_INSERT_ROWS)
    ]
    table = ColumnStoreTable(schema)

    def run_inline():
        with delta_writes_disabled():
            for row in rows:
                table.insert_rows([row])

    def run_delta():
        for row in rows:
            table.insert_rows([row])
        table.merge_delta()

    return best_of(run_inline if inline_baseline else run_delta, repetitions=1) * 1000.0


# -- materialized views (serve vs recompute) -------------------------------------------


def measure_matview_grouped_agg_ms(recompute_baseline: bool = False) -> float:
    """Wall-clock of the recurring 100k-row grouped aggregate, served from a view.

    The view session answers the statement from the materialized rows (a
    plan-cache hit plus a copy of the grouped result);
    ``recompute_baseline=True`` measures the identical statement under
    ``matview_disabled()`` — the full scan-and-aggregate path, which is what
    every recurrence pays without the view.
    """
    from repro.api import connect
    from repro.engine.matview import matview_disabled

    session = connect(
        database=build_aggregation_database(Store.COLUMN, GROUP_BY_DISTINCT)
    )
    query = aggregate("facts").sum("amount").count().group_by("region").build()
    session.create_view("mv_facts", query)
    runner = lambda: session.execute(query)  # noqa: E731
    if recompute_baseline:
        with matview_disabled():
            return best_of(runner) * 1000.0
    return best_of(runner) * 1000.0


# -- shard-parallel scatter/gather (1M-row projection scenarios) -----------------------

SHARD_BENCH_ROWS = 1_000_000

_SHARD_DATABASES: dict = {}


def build_shard_database() -> HybridDatabase:
    """1M-row column-store fact table for the shard scenarios (cached).

    Deterministic arithmetic values (no RNG): the scenarios compare simulated
    cost projections, which must be bit-stable across runs and machines.
    Every column is low-cardinality on purpose — a unique-id column would
    build a million-entry dictionary whose Python objects drag down garbage
    collection for the rest of the process (the table is module-cached).
    """
    cached = _SHARD_DATABASES.get("column")
    if cached is None:
        schema = TableSchema.build(
            "shard_facts",
            [
                ("bucket", DataType.VARCHAR),
                ("value", DataType.DOUBLE),
                ("hits", DataType.INTEGER),
            ],
        )
        rows = [
            {
                "bucket": f"b{i % 16:02d}",
                "value": float((i * 7) % 1000),
                "hits": (i * 13) % 997,
            }
            for i in range(SHARD_BENCH_ROWS)
        ]
        cached = HybridDatabase()
        cached.create_table(schema, store=Store.COLUMN)
        cached.load_rows("shard_facts", rows)
        _SHARD_DATABASES["column"] = cached
    return cached


def _shard_grouped_agg_query():
    return (
        aggregate("shard_facts")
        .sum("value").count()
        .group_by("bucket")
        .where(ge("hits", 100))
        .build()
    )


def _shard_scan_query():
    # ~0.1% selectivity: the parent-side row fetch stays small enough that
    # the parallelised scan dominates the projected bill.
    return (
        select("shard_facts")
        .columns("bucket", "value")
        .where(ge("hits", 996))
        .build()
    )


def _measure_shard_projection_ms(query, parallel_components,
                                 serial_baseline: bool = False) -> float:
    """Simulated runtime of *query* at fan-out 4 over the 1M-row table.

    The sharded execution really scatters to the worker pool (a silent
    fallback leaves ``shard_stats`` empty and fails the measurement); its
    serially-charged :class:`CostBreakdown` — bit-identical to the
    ``shard_execution_disabled()`` reference by construction — is projected
    onto the crew with :func:`projected_parallel_ms`.  The baseline is the
    serial reference's own simulated runtime.  Both are deterministic: this
    scenario gates the cost model's parallel projection, not wall-clock.
    """
    from repro.engine.shard import (
        projected_parallel_ms,
        shard_execution_disabled,
    )

    database = build_shard_database()
    if serial_baseline:
        with shard_execution_disabled():
            return database.execute(query).cost.total_ms
    result = database.execute(query)
    fan_out, shards = result.shard_stats["shard_facts"]
    return projected_parallel_ms(
        result.cost, shards, fan_out, database.device, parallel_components
    )


def measure_shard_grouped_agg_ms(serial_baseline: bool = False) -> float:
    from repro.engine.shard import AGGREGATION_PARALLEL_COMPONENTS

    return _measure_shard_projection_ms(
        _shard_grouped_agg_query(), AGGREGATION_PARALLEL_COMPONENTS,
        serial_baseline,
    )


def measure_shard_scan_ms(serial_baseline: bool = False) -> float:
    from repro.engine.shard import SELECT_PARALLEL_COMPONENTS

    return _measure_shard_projection_ms(
        _shard_scan_query(), SELECT_PARALLEL_COMPONENTS, serial_baseline
    )


#: Shard scenarios and their acceptance bars (>= 2x at fan-out 4).
SHARD_BENCH_SCENARIOS = {
    "shard_grouped_agg_1m_ms": measure_shard_grouped_agg_ms,
    "shard_scan_1m_ms": measure_shard_scan_ms,
}


# -- selective range scans (code-domain predicates + zone-map pruning) -----------------


def _scan_date(i: int) -> str:
    """Deterministic pseudo-random 'YYYY-MM-DD' date (lexicographic = temporal)."""
    offset = (i * 2654435761) % 2520  # ~7 years of day offsets
    year = 1992 + offset // 360
    month = 1 + (offset % 360) // 30
    day = 1 + offset % 30
    return f"{year:04d}-{month:02d}-{day:02d}"


_SCAN_DATABASES: dict = {}


def build_scan_database(partitioned: bool) -> HybridDatabase:
    """100k-row column-store fact table filtered by a VARCHAR date column.

    The partitioned variant splits horizontally on the date: rows from 1997
    on live in a row-store hot partition, the rest in the column store —
    range scans below 1997 prune the hot partition via its zone map.
    Cached per layout: the scan scenarios never mutate it.
    """
    cached = _SCAN_DATABASES.get(partitioned)
    if cached is not None:
        return cached
    schema = TableSchema.build(
        "scan_facts",
        [
            ("id", DataType.INTEGER),
            ("ship_date", DataType.VARCHAR),
            ("qty", DataType.INTEGER),
            ("price", DataType.DOUBLE),
        ],
        primary_key=["id"],
    )
    rows = [
        {
            "id": i,
            "ship_date": _scan_date(i),
            "qty": 1 + i % 50,
            "price": float(i % 1000),
        }
        for i in range(SCAN_ROWS)
    ]
    database = HybridDatabase()
    database.create_table(schema, store=Store.COLUMN)
    database.load_rows("scan_facts", rows)
    if partitioned:
        database.apply_partitioning(
            "scan_facts",
            TablePartitioning(
                horizontal=HorizontalPartitionSpec(
                    predicate=ge("ship_date", "1997-01-01"),
                    hot_store=Store.ROW,
                    cold_store=Store.COLUMN,
                )
            ),
        )
    _SCAN_DATABASES[partitioned] = database
    return database


def _scan_predicate(narrow: bool):
    """An OR of two date ranges, entirely below the 1997 hot-partition split.

    ``narrow`` selects ~2.5% of the rows (two one-month windows), the wide
    variant ~29% (two full years).  Both compile to code-domain interval
    masks; the decode-and-compare reference gathers and compares 100k
    strings per referenced leaf.
    """
    if narrow:
        return Or((
            Between("ship_date", "1994-06-01", "1994-06-30"),
            Between("ship_date", "1995-06-01", "1995-06-30"),
        ))
    return Or((
        Between("ship_date", "1993-01-01", "1993-12-31"),
        Between("ship_date", "1996-01-01", "1996-12-31"),
    ))


def measure_selective_scan_ms(
    partitioned: bool, narrow: bool, decode_baseline: bool = False
) -> float:
    """Wall-clock of a filtered COUNT(*) over the 100k-row scan table.

    ``decode_baseline=True`` measures the same query over the same data with
    code-domain predicates and zone pruning disabled — the decode-and-compare
    reference path the speedup is recorded against.
    """
    database = build_scan_database(partitioned)
    query = aggregate("scan_facts").count().where(_scan_predicate(narrow)).build()
    runner = lambda: database.execute(query)  # noqa: E731
    if decode_baseline:
        with code_domain_disabled(), zone_pruning_disabled():
            return best_of(runner) * 1000.0
    return best_of(runner) * 1000.0


SCAN_SCENARIOS = {
    "selective_scan_100k_narrow_ms": (False, True),
    "selective_scan_100k_wide_ms": (False, False),
    "selective_scan_100k_narrow_partitioned_ms": (True, True),
    "selective_scan_100k_wide_partitioned_ms": (True, False),
}

#: key -> zero-argument measurement, for the re-record block and the
#: standalone comparator (``benchmarks/compare_bench.py``).
MEASUREMENTS = {
    "agg_100k_column_ms": lambda: measure_aggregation_ms(Store.COLUMN),
    "agg_100k_row_ms": lambda: measure_aggregation_ms(Store.ROW),
    "group_by_string_100k_ms": measure_string_group_by_ms,
    "group_by_string_100k_rowstore_ms": measure_string_group_by_rowstore_ms,
    "tpch_datagen_sf001_ms": measure_tpch_datagen_ms,
    **{
        key: (lambda p=p, n=n: measure_selective_scan_ms(p, n))
        for key, (p, n) in SCAN_SCENARIOS.items()
    },
    **{
        key: measure for key, (measure, _) in PUSHDOWN_SCENARIOS.items()
    },
    "delta_insert_100k_ms": measure_delta_insert_ms,
    "matview_grouped_agg_100k_ms": measure_matview_grouped_agg_ms,
    **SHARD_BENCH_SCENARIOS,
    "fig10_s": measure_fig10_s,
}

#: Live decode-then-reduce baselines of the pushdown scenarios (used by the
#: re-record block and ``compare_bench.py --fail-under``).
BASELINE_MEASUREMENTS = {
    key: (lambda measure=measure: measure(decode_baseline=True))
    for key, (measure, _) in PUSHDOWN_SCENARIOS.items()
}
#: The delta-insert baseline re-runs the inline write path live: it still
#: exists behind ``delta_writes_disabled()`` and *is* the seed pipeline.
BASELINE_MEASUREMENTS["delta_insert_100k_ms"] = lambda: measure_delta_insert_ms(
    inline_baseline=True
)
#: The matview baseline re-runs the recompute path live behind
#: ``matview_disabled()`` — the full scan-and-aggregate every recurrence of
#: the statement pays without the view.
BASELINE_MEASUREMENTS["matview_grouped_agg_100k_ms"] = (
    lambda: measure_matview_grouped_agg_ms(recompute_baseline=True)
)
#: The shard baselines re-run the serial path live behind
#: ``shard_execution_disabled()`` — it *is* the reference the sharded
#: execution's charges are pinned against.
for _key, _measure in SHARD_BENCH_SCENARIOS.items():
    BASELINE_MEASUREMENTS[_key] = (
        lambda measure=_measure: measure(serial_baseline=True)
    )


@pytest.fixture(scope="module")
def recorded():
    with BENCH_FILE.open() as handle:
        return json.load(handle)["recorded"]


@pytest.mark.perf
def test_agg_100k_column_store_has_not_regressed(recorded):
    measured_ms = measure_aggregation_ms(Store.COLUMN)
    budget_ms = max(recorded["agg_100k_column_ms"] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS)
    assert measured_ms <= budget_ms, (
        f"100k-row column-store aggregation took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms (recorded {recorded['agg_100k_column_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_agg_100k_row_store_has_not_regressed(recorded):
    measured_ms = measure_aggregation_ms(Store.ROW)
    budget_ms = max(recorded["agg_100k_row_ms"] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS)
    assert measured_ms <= budget_ms, (
        f"100k-row row-store aggregation took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms (recorded {recorded['agg_100k_row_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_string_group_by_has_not_regressed(recorded):
    measured_ms = measure_string_group_by_ms()
    budget_ms = max(
        recorded["group_by_string_100k_ms"] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS
    )
    assert measured_ms <= budget_ms, (
        f"100k-row string group-by took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms "
        f"(recorded {recorded['group_by_string_100k_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_string_group_by_rowstore_has_not_regressed(recorded):
    measured_ms = measure_string_group_by_rowstore_ms()
    budget_ms = max(
        recorded["group_by_string_100k_rowstore_ms"] * REGRESSION_FACTOR,
        MIN_AGG_BUDGET_MS,
    )
    assert measured_ms <= budget_ms, (
        f"100k-row row-store string group-by took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms "
        f"(recorded {recorded['group_by_string_100k_rowstore_ms']:.3f}ms)"
    )


@pytest.mark.perf
def test_string_group_by_rowstore_speedup_is_recorded():
    """The interning-cache acceptance bar: >=2x over per-query np.unique."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["group_by_string_100k_rowstore_ms"] >= 2.0


@pytest.mark.perf
def test_string_group_by_speedup_is_recorded():
    """The late-materialization acceptance bar: >=2x over decode-up-front."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["group_by_string_100k_ms"] >= 2.0


@pytest.mark.perf
@pytest.mark.parametrize("key", sorted(SCAN_SCENARIOS))
def test_selective_scan_has_not_regressed(recorded, key):
    partitioned, narrow = SCAN_SCENARIOS[key]
    measured_ms = measure_selective_scan_ms(partitioned, narrow)
    budget_ms = max(recorded[key] * REGRESSION_FACTOR, MIN_SCAN_BUDGET_MS)
    assert measured_ms <= budget_ms, (
        f"{key} took {measured_ms:.3f}ms, budget is {budget_ms:.3f}ms "
        f"(recorded {recorded[key]:.3f}ms)"
    )


@pytest.mark.perf
def test_selective_scan_speedups_are_recorded():
    """The code-domain/zone-map acceptance bar.

    The partitioned narrow-range scan (zone pruning + code-domain intervals)
    must be recorded >= 5x faster than the decode-and-compare path; every
    other scan scenario must hold at least the generic 2x bar.
    """
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["selective_scan_100k_narrow_partitioned_ms"] >= 5.0
    for key in SCAN_SCENARIOS:
        assert payload["speedup"][key] >= 2.0, key


@pytest.mark.perf
@pytest.mark.parametrize("key", sorted(PUSHDOWN_SCENARIOS))
def test_aggregate_pushdown_has_not_regressed(recorded, key):
    measure, _ = PUSHDOWN_SCENARIOS[key]
    measured_ms = measure()
    budget_ms = max(recorded[key] * REGRESSION_FACTOR, MIN_AGG_BUDGET_MS)
    assert measured_ms <= budget_ms, (
        f"{key} took {measured_ms:.3f}ms, budget is {budget_ms:.3f}ms "
        f"(recorded {recorded[key]:.3f}ms)"
    )


@pytest.mark.perf
def test_aggregate_pushdown_speedups_are_recorded():
    """The pushdown acceptance bars.

    The grouped aggregate over a dictionary-encoded key + value must be
    recorded >= 3x faster than decode-then-reduce, and the no-predicate
    MIN/MAX must be recorded >= 20x (zero-scan answers from zone synopses).
    """
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    for key, (_, bar) in PUSHDOWN_SCENARIOS.items():
        assert payload["speedup"][key] >= bar, key


@pytest.mark.perf
def test_delta_insert_has_not_regressed(recorded):
    measured_ms = measure_delta_insert_ms()
    budget_ms = recorded["delta_insert_100k_ms"] * REGRESSION_FACTOR
    assert measured_ms <= budget_ms, (
        f"100k per-row delta inserts took {measured_ms:.1f}ms, "
        f"budget is {budget_ms:.1f}ms "
        f"(recorded {recorded['delta_insert_100k_ms']:.1f}ms)"
    )


@pytest.mark.perf
def test_delta_insert_speedup_is_recorded():
    """The delta-split acceptance bar: >=5x over inline per-row inserts."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["delta_insert_100k_ms"] >= 5.0


@pytest.mark.perf
@pytest.mark.shard
@pytest.mark.parametrize("key", sorted(SHARD_BENCH_SCENARIOS))
def test_shard_projection_has_not_regressed(recorded, key):
    """The projections are deterministic: 2x headroom only absorbs cost-model
    recalibration, not machine noise."""
    measured_ms = SHARD_BENCH_SCENARIOS[key]()
    budget_ms = recorded[key] * REGRESSION_FACTOR
    assert measured_ms <= budget_ms, (
        f"{key} projected {measured_ms:.3f}ms, budget is {budget_ms:.3f}ms "
        f"(recorded {recorded[key]:.3f}ms)"
    )


@pytest.mark.perf
@pytest.mark.shard
@pytest.mark.parametrize("key", sorted(SHARD_BENCH_SCENARIOS))
def test_shard_live_speedup_holds(key):
    """The shard acceptance bar, live: >= 2x over serial at fan-out 4.

    Both sides are simulated runtimes from the same bit-identical
    :class:`CostBreakdown`; the sharded side additionally proves the
    scatter/gather really executed (``shard_stats`` feeds the projection).
    """
    measure = SHARD_BENCH_SCENARIOS[key]
    projected_ms = measure()
    serial_ms = measure(serial_baseline=True)
    assert serial_ms / projected_ms >= 2.0, (
        f"{key}: projected {projected_ms:.3f}ms vs serial {serial_ms:.3f}ms "
        f"({serial_ms / projected_ms:.2f}x < 2x)"
    )


@pytest.mark.perf
@pytest.mark.shard
def test_shard_speedups_are_recorded():
    """The recorded shard bars: >= 2x at 4 workers on scan + grouped agg."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    for key in SHARD_BENCH_SCENARIOS:
        assert payload["speedup"][key] >= 2.0, key


@pytest.mark.perf
@pytest.mark.matview
def test_matview_serve_has_not_regressed(recorded):
    measured_ms = measure_matview_grouped_agg_ms()
    budget_ms = max(
        recorded["matview_grouped_agg_100k_ms"] * REGRESSION_FACTOR,
        MIN_AGG_BUDGET_MS,
    )
    assert measured_ms <= budget_ms, (
        f"matview-served 100k grouped aggregate took {measured_ms:.3f}ms, "
        f"budget is {budget_ms:.3f}ms "
        f"(recorded {recorded['matview_grouped_agg_100k_ms']:.3f}ms)"
    )


@pytest.mark.perf
@pytest.mark.matview
def test_matview_live_speedup_holds():
    """The matview acceptance bar, live: >= 5x over recompute-per-query."""
    served_ms = measure_matview_grouped_agg_ms()
    recompute_ms = measure_matview_grouped_agg_ms(recompute_baseline=True)
    assert recompute_ms / served_ms >= 5.0, (
        f"served {served_ms:.3f}ms vs recompute {recompute_ms:.3f}ms "
        f"({recompute_ms / served_ms:.2f}x < 5x)"
    )


@pytest.mark.perf
@pytest.mark.matview
def test_matview_speedup_is_recorded():
    """The recorded matview bar: >= 5x over the recompute baseline."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["matview_grouped_agg_100k_ms"] >= 5.0


@pytest.mark.perf
def test_tpch_datagen_has_not_regressed(recorded):
    measured_ms = measure_tpch_datagen_ms()
    budget_ms = recorded["tpch_datagen_sf001_ms"] * REGRESSION_FACTOR
    assert measured_ms <= budget_ms, (
        f"TPC-H datagen took {measured_ms:.1f}ms, budget is {budget_ms:.1f}ms "
        f"(recorded {recorded['tpch_datagen_sf001_ms']:.1f}ms)"
    )


@pytest.mark.perf
def test_tpch_datagen_speedup_is_recorded():
    """The vectorized generator must stay >= 2x over the per-row RNG loop."""
    with BENCH_FILE.open() as handle:
        payload = json.load(handle)
    assert payload["speedup"]["tpch_datagen_sf001_ms"] >= 2.0


@pytest.mark.perf
def test_fig10_scenario_has_not_regressed(recorded):
    measured_s = measure_fig10_s()
    budget_s = recorded["fig10_s"] * REGRESSION_FACTOR
    assert measured_s <= budget_s, (
        f"fig10 TPC-H scenario took {measured_s:.2f}s, "
        f"budget is {budget_s:.2f}s (recorded {recorded['fig10_s']:.2f}s)"
    )


if __name__ == "__main__":
    # Re-record the "recorded" section (run after intentional perf changes):
    #   PYTHONPATH=src python benchmarks/test_perf_pipeline.py
    payload = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {}
    payload["recorded"] = {key: measure() for key, measure in MEASUREMENTS.items()}
    baseline = payload.setdefault("seed_baseline", {})
    # The selective-scan and pushdown baselines are re-measured here rather
    # than pinned: the decode-and-compare / decode-then-reduce paths still
    # exist behind the disable toggles and *are* the seed pipeline for these
    # scenarios.
    for key, (partitioned, narrow) in SCAN_SCENARIOS.items():
        baseline[key] = measure_selective_scan_ms(
            partitioned, narrow, decode_baseline=True
        )
    for key, measure_baseline in BASELINE_MEASUREMENTS.items():
        baseline[key] = measure_baseline()
    payload["speedup"] = {
        key: baseline[key] / value
        for key, value in payload["recorded"].items()
        if baseline.get(key)
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
