"""Benchmark: Figure 10 — combination and comparison on the TPC-H scenario."""

from conftest import run_and_record

from repro.bench.experiments.fig10_tpch import run_fig10


def test_fig10_tpch_layout_comparison(benchmark):
    result = run_and_record(
        benchmark,
        run_fig10,
        scale_factor=0.005,
        num_queries=2_000,
        olap_fraction=0.01,
    )
    series = result.series[0]
    runtimes = dict(zip(series.xs(), series.column("runtime_s")))
    # Paper ordering: uniform layouts are slowest, the table-level
    # recommendation is faster, the partitioned layout is fastest.
    assert runtimes["table"] <= min(runtimes["rs_only"], runtimes["cs_only"]) * 1.02
    assert runtimes["partitioned"] < runtimes["table"]
    assert runtimes["partitioned"] < runtimes["cs_only"]
    assert result.metadata["partitioned_vs_table_improvement"] > 0.05
    assert result.metadata["partitioned_vs_cs_improvement"] > 0.10
    # As in the paper, lineitem and orders move to the column store and are
    # the tables selected for partitioning.
    assert "lineitem" in result.metadata["table_level_column_tables"]
    assert "lineitem" in result.metadata["partitioned_tables"]
